package lsm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"tierbase/internal/wal"
)

// CompactionStyle selects the merge policy.
type CompactionStyle int

// Compaction styles.
const (
	// Leveled compaction (RocksDB/LevelDB style): non-overlapping runs per
	// level, L0 overlapping. Better read amplification; the default, and
	// the style attributed to the HBase-like baseline.
	Leveled CompactionStyle = iota
	// SizeTiered compaction (Cassandra style): similar-sized runs merged
	// together, all runs overlapping. Better write amplification.
	SizeTiered
)

// Options configures a DB.
type Options struct {
	Dir                 string
	MemtableBytes       int64 // flush threshold; default 4 MiB
	BlockBytes          int   // data block target; default 4 KiB
	BloomBitsPerKey     int   // 0 = default 10; -1 disables bloom filters
	BlockCacheBytes     int64 // default 8 MiB; 0 uses default, -1 disables
	L0CompactionTrigger int   // default 4
	BaseLevelBytes      int64 // L1 size limit; default 16 MiB
	LevelMultiplier     int   // default 10
	MaxLevels           int   // default 7
	TargetFileBytes     int64 // compaction output split size; default 2 MiB
	Compaction          CompactionStyle
	DisableWAL          bool
	WALSyncPolicy       wal.SyncPolicy
	// WALFactory overrides WAL construction (e.g. PMem-backed WAL).
	// If nil, a file-backed log in Dir/wal is used.
	WALFactory func(dir string) (wal.Appender, error)
}

func (o *Options) fill() {
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 4 << 20
	}
	if o.BlockBytes <= 0 {
		o.BlockBytes = 4 << 10
	}
	if o.BloomBitsPerKey == 0 {
		o.BloomBitsPerKey = 10
	}
	if o.BlockCacheBytes == 0 {
		o.BlockCacheBytes = 8 << 20
	}
	if o.L0CompactionTrigger <= 0 {
		o.L0CompactionTrigger = 4
	}
	if o.BaseLevelBytes <= 0 {
		o.BaseLevelBytes = 16 << 20
	}
	if o.LevelMultiplier <= 0 {
		o.LevelMultiplier = 10
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = 7
	}
	if o.TargetFileBytes <= 0 {
		o.TargetFileBytes = 2 << 20
	}
}

// DB errors.
var (
	ErrNotFound = errors.New("lsm: key not found")
	ErrDBClosed = errors.New("lsm: db closed")
)

// DB is the LSM-tree key-value store.
type DB struct {
	opts Options

	mu      sync.RWMutex
	mem     *skiplist
	wlog    wal.Appender
	walDir  string
	man     *manifest
	readers map[uint64]*tableReader
	cache   *blockCache
	seq     uint64
	closed  bool

	// nextFile allocates table file numbers; shared by the foreground
	// flush path and the background compactor, so it must be atomic.
	nextFile atomic.Uint64

	compactCh   chan struct{}
	compactDone chan struct{}
	compactMu   sync.Mutex // serializes compaction rounds

	statsMu     sync.Mutex
	flushes     int64
	compactions int64
	writeBytes  int64
}

// Open opens (creating if needed) a DB at opts.Dir and recovers state from
// the manifest and WAL.
func Open(opts Options) (*DB, error) {
	opts.fill()
	if opts.Dir == "" {
		return nil, errors.New("lsm: Dir required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("lsm: mkdir: %w", err)
	}
	man, err := loadManifest(opts.Dir, opts.MaxLevels)
	if err != nil {
		return nil, err
	}
	db := &DB{
		opts:        opts,
		mem:         newSkiplist(),
		man:         man,
		readers:     make(map[uint64]*tableReader),
		seq:         man.LastSeq,
		compactCh:   make(chan struct{}, 1),
		compactDone: make(chan struct{}),
	}
	db.nextFile.Store(man.NextFile)
	if opts.BlockCacheBytes > 0 {
		db.cache = newBlockCache(opts.BlockCacheBytes)
	}
	for _, lvl := range man.Levels {
		for _, meta := range lvl {
			r, err := openTable(opts.Dir, meta, db.cache)
			if err != nil {
				db.closeReadersLocked()
				return nil, err
			}
			db.readers[meta.Num] = r
		}
	}
	db.walDir = opts.Dir + "/wal"
	if !opts.DisableWAL {
		// Replay any records newer than the last flush.
		if err := wal.Replay(db.walDir, func(p []byte) error {
			seq, kind, key, val, err := decodeWALRecord(p)
			if err != nil {
				return err
			}
			db.mem.put(key, memEntry{seq: seq, kind: kind, value: val})
			if seq > db.seq {
				db.seq = seq
			}
			return nil
		}); err != nil {
			db.closeReadersLocked()
			return nil, err
		}
		if opts.WALFactory != nil {
			db.wlog, err = opts.WALFactory(db.walDir)
		} else {
			db.wlog, err = wal.Open(wal.Options{Dir: db.walDir, Policy: opts.WALSyncPolicy})
		}
		if err != nil {
			db.closeReadersLocked()
			return nil, err
		}
	}
	go db.compactionLoop()
	return db, nil
}

func (db *DB) closeReadersLocked() {
	for _, r := range db.readers {
		r.close()
	}
}

// encodeWALRecord frames one write for the WAL.
func encodeWALRecord(seq uint64, kind entryKind, key, val []byte) []byte {
	buf := make([]byte, 0, binary.MaxVarintLen64*3+1+len(key)+len(val))
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], seq)
	buf = append(buf, tmp[:n]...)
	buf = append(buf, byte(kind))
	n = binary.PutUvarint(tmp[:], uint64(len(key)))
	buf = append(buf, tmp[:n]...)
	buf = append(buf, key...)
	n = binary.PutUvarint(tmp[:], uint64(len(val)))
	buf = append(buf, tmp[:n]...)
	buf = append(buf, val...)
	return buf
}

func decodeWALRecord(p []byte) (seq uint64, kind entryKind, key, val []byte, err error) {
	badRec := errors.New("lsm: bad wal record")
	seq, n := binary.Uvarint(p)
	if n <= 0 || n >= len(p) {
		return 0, 0, nil, nil, badRec
	}
	p = p[n:]
	kind = entryKind(p[0])
	p = p[1:]
	klen, n := binary.Uvarint(p)
	if n <= 0 || int(klen) > len(p)-n {
		return 0, 0, nil, nil, badRec
	}
	p = p[n:]
	key = append([]byte(nil), p[:klen]...)
	p = p[klen:]
	vlen, n := binary.Uvarint(p)
	if n <= 0 || int(vlen) > len(p)-n {
		return 0, 0, nil, nil, badRec
	}
	p = p[n:]
	val = append([]byte(nil), p[:vlen]...)
	return seq, kind, key, val, nil
}

// allocFileNum returns a fresh table file number.
func (db *DB) allocFileNum() uint64 { return db.nextFile.Add(1) - 1 }

// Put stores key=value.
func (db *DB) Put(key, value []byte) error {
	return db.write(kindSet, key, value)
}

// Delete removes key (writes a tombstone).
func (db *DB) Delete(key []byte) error {
	return db.write(kindDelete, key, nil)
}

func (db *DB) write(kind entryKind, key, value []byte) error {
	if len(key) == 0 {
		return errors.New("lsm: empty key")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrDBClosed
	}
	db.seq++
	seq := db.seq
	if db.wlog != nil {
		if err := db.wlog.Append(encodeWALRecord(seq, kind, key, value)); err != nil {
			return err
		}
	}
	k := append([]byte(nil), key...)
	v := append([]byte(nil), value...)
	db.mem.put(k, memEntry{seq: seq, kind: kind, value: v})
	db.statsMu.Lock()
	db.writeBytes += int64(len(key) + len(value))
	db.statsMu.Unlock()
	if db.mem.approximateSize() >= db.opts.MemtableBytes {
		if err := db.flushMemtableLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Get fetches the value for key, or ErrNotFound.
func (db *DB) Get(key []byte) ([]byte, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, ErrDBClosed
	}
	if e, ok := db.mem.get(key); ok {
		if e.kind == kindDelete {
			return nil, ErrNotFound
		}
		return append([]byte(nil), e.value...), nil
	}
	// L0: overlapping tables — consult all, keep the highest sequence.
	var best memEntry
	var found bool
	for _, meta := range db.man.Levels[0] {
		r := db.readers[meta.Num]
		if r == nil {
			continue
		}
		if bytes.Compare(key, meta.Smallest) < 0 || bytes.Compare(key, meta.Largest) > 0 {
			continue
		}
		e, ok, err := r.get(key)
		if err != nil {
			return nil, err
		}
		if ok && (!found || e.seq > best.seq) {
			best, found = e, true
		}
	}
	if found {
		if best.kind == kindDelete {
			return nil, ErrNotFound
		}
		return best.value, nil
	}
	// L1+: non-overlapping — at most one candidate per level.
	for l := 1; l < len(db.man.Levels); l++ {
		for _, meta := range db.man.Levels[l] {
			if bytes.Compare(key, meta.Smallest) < 0 || bytes.Compare(key, meta.Largest) > 0 {
				continue
			}
			r := db.readers[meta.Num]
			if r == nil {
				continue
			}
			e, ok, err := r.get(key)
			if err != nil {
				return nil, err
			}
			if ok {
				if e.kind == kindDelete {
					return nil, ErrNotFound
				}
				return e.value, nil
			}
			break // non-overlapping: no other table in this level can match
		}
	}
	return nil, ErrNotFound
}

// Has reports whether key exists.
func (db *DB) Has(key []byte) (bool, error) {
	_, err := db.Get(key)
	if err == ErrNotFound {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// flushMemtableLocked writes the memtable to a new L0 table. Caller holds mu.
func (db *DB) flushMemtableLocked() error {
	if db.mem.entries() == 0 {
		return nil
	}
	num := db.allocFileNum()
	tb, err := newTableBuilder(tableFileName(db.opts.Dir, num), db.opts.BlockBytes, db.opts.BloomBitsPerKey)
	if err != nil {
		return err
	}
	it := db.mem.iter()
	for it.next() {
		if err := tb.add(it.key(), it.entry()); err != nil {
			tb.abandon()
			return err
		}
	}
	meta, err := tb.finish(num)
	if err != nil {
		return err
	}
	r, err := openTable(db.opts.Dir, meta, db.cache)
	if err != nil {
		return err
	}
	newMan := db.man.clone()
	newMan.NextFile = db.nextFile.Load()
	newMan.LastSeq = db.seq
	newMan.Levels[0] = append(newMan.Levels[0], meta)
	if err := newMan.save(db.opts.Dir); err != nil {
		r.close()
		return err
	}
	db.man = newMan
	db.readers[num] = r
	db.mem = newSkiplist()
	if db.wlog != nil {
		if l, ok := db.wlog.(*wal.Log); ok {
			if err := l.Truncate(); err != nil {
				return err
			}
		}
	}
	db.statsMu.Lock()
	db.flushes++
	db.statsMu.Unlock()
	db.triggerCompaction()
	return nil
}

// Flush forces the memtable to disk (used by checkpoints and tests).
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrDBClosed
	}
	return db.flushMemtableLocked()
}

func (db *DB) triggerCompaction() {
	select {
	case db.compactCh <- struct{}{}:
	default:
	}
}

// Stats summarizes DB state for monitoring and cost measurement.
type Stats struct {
	MemtableBytes  int64
	DiskBytes      int64
	TableCount     int
	LevelBytes     []int64
	Flushes        int64
	Compactions    int64
	WriteBytes     int64
	CacheHits      int64
	CacheMisses    int64
	CacheBytes     int64
	SequenceNumber uint64
}

// Stats returns a snapshot of internal counters.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	st := Stats{
		MemtableBytes:  db.mem.approximateSize(),
		LevelBytes:     make([]int64, len(db.man.Levels)),
		SequenceNumber: db.seq,
	}
	for l, lvl := range db.man.Levels {
		for _, t := range lvl {
			st.DiskBytes += t.Size
			st.TableCount++
			st.LevelBytes[l] += t.Size
		}
	}
	cache := db.cache
	db.mu.RUnlock()
	db.statsMu.Lock()
	st.Flushes = db.flushes
	st.Compactions = db.compactions
	st.WriteBytes = db.writeBytes
	db.statsMu.Unlock()
	if cache != nil {
		st.CacheHits, st.CacheMisses, st.CacheBytes = cache.stats()
	}
	return st
}

// Close flushes the memtable and releases all resources.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	err := db.flushMemtableLocked()
	db.closed = true
	db.closeReadersLocked()
	var werr error
	if db.wlog != nil {
		werr = db.wlog.Close()
	}
	db.mu.Unlock()
	close(db.compactCh)
	<-db.compactDone
	if err != nil {
		return err
	}
	return werr
}
