// Package elastic implements TierBase's elastic threading (paper §4.4):
// a data node runs in single-worker mode by default (event-loop
// efficiency, minimal locking), and when the workload on the instance
// bursts, the controller "seamlessly transitions to multi-threaded mode by
// dynamically adding threads within the container's pre-allocated CPU
// resources"; when the burst subsides it drops back to one worker so the
// idle CPU returns to other tenants of the container.
package elastic

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"tierbase/internal/metrics"
)

// Mode labels the current threading mode.
type Mode int

// Threading modes.
const (
	// Single is the default event-loop mode (one worker).
	Single Mode = iota
	// Boost is multi-threaded mode using idle container CPU.
	Boost
)

// String names the mode.
func (m Mode) String() string {
	if m == Boost {
		return "boost"
	}
	return "single"
}

// PoolOptions configures a Pool.
type PoolOptions struct {
	// MaxWorkers is the container CPU budget (default 4).
	MaxWorkers int
	// QueueSize bounds the pending task queue (default 4096).
	QueueSize int
	// BoostQueueDepth triggers scale-up when the queue backlog exceeds it
	// (default QueueSize/8). Note that callers which keep at most one task
	// in flight per connection (the server's command loop) produce a depth
	// of at most connections-1, so front ends should set this to a small
	// absolute value rather than relying on the queue-relative default.
	BoostQueueDepth int
	// BoostTicks is how many consecutive hot evaluations are needed before
	// scaling up (boost-side hysteresis; default 1: react on the first
	// tick that observes a backlog).
	BoostTicks int
	// BoostSubmitRate triggers scale-up when the windowed submission rate
	// (tasks/sec over the recent window) crosses it, even with an empty
	// queue. CPU-bound cache-resident bursts drain the queue as fast as it
	// fills — depth never accumulates — but the submit rate still shows
	// the burst. 0 disables the rate trigger (depth-only, the default).
	BoostSubmitRate float64
	// EvalInterval is the controller period (default 10 ms).
	EvalInterval time.Duration
	// CooldownTicks is how many consecutive calm evaluations are needed
	// before scaling back down (hysteresis; default 20).
	CooldownTicks int
	// Fixed pins the worker count (disables elasticity): 0 = elastic,
	// n>0 = always n workers. Used for the -s and -m baseline modes.
	Fixed int
}

func (o *PoolOptions) fill() {
	if o.MaxWorkers <= 0 {
		o.MaxWorkers = 4
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 4096
	}
	if o.BoostQueueDepth <= 0 {
		o.BoostQueueDepth = o.QueueSize / 8
		if o.BoostQueueDepth < 1 {
			o.BoostQueueDepth = 1
		}
	}
	if o.BoostTicks <= 0 {
		o.BoostTicks = 1
	}
	if o.EvalInterval <= 0 {
		o.EvalInterval = 10 * time.Millisecond
	}
	if o.CooldownTicks <= 0 {
		o.CooldownTicks = 20
	}
}

// ErrStopped is returned by Submit after Stop.
var ErrStopped = errors.New("elastic: pool stopped")

// Task is one unit of work. Submitting a long-lived Task object (instead
// of a fresh closure per call) keeps the submission path allocation-free;
// the server reuses one task per connection this way.
type Task interface{ Run() }

// funcTask adapts a plain closure to Task. Func values are pointer-shaped,
// so the interface conversion itself does not allocate.
type funcTask func()

func (f funcTask) Run() { f() }

// Pool is an elastically sized worker pool processing submitted tasks.
type Pool struct {
	opts   PoolOptions
	tasks  chan Task
	quitCh chan struct{} // one receive per worker retires it
	stopCh chan struct{}
	wg     sync.WaitGroup
	ctlWg  sync.WaitGroup

	workers  atomic.Int32
	stopped  atomic.Bool
	boosts   atomic.Int64 // scale-up events
	shrinks  atomic.Int64 // scale-down events
	executed atomic.Int64
	rate     *metrics.WindowCounter
	calm     int
	hot      int
}

// NewPool builds and starts a pool in single mode (or Fixed workers).
func NewPool(opts PoolOptions) *Pool {
	opts.fill()
	p := &Pool{
		opts:   opts,
		tasks:  make(chan Task, opts.QueueSize),
		quitCh: make(chan struct{}, opts.MaxWorkers),
		stopCh: make(chan struct{}),
		rate:   metrics.NewWindowCounter(10, 100*time.Millisecond),
	}
	start := 1
	if opts.Fixed > 0 {
		start = opts.Fixed
		if start > opts.MaxWorkers {
			start = opts.MaxWorkers
		}
	}
	for i := 0; i < start; i++ {
		p.spawnWorker()
	}
	if opts.Fixed == 0 {
		p.ctlWg.Add(1)
		go p.controlLoop()
	}
	return p
}

func (p *Pool) spawnWorker() {
	p.workers.Add(1)
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			select {
			case task, ok := <-p.tasks:
				if !ok {
					return
				}
				task.Run()
				p.executed.Add(1)
			case <-p.quitCh:
				return
			case <-p.stopCh:
				// Drain remaining tasks before exiting.
				for {
					select {
					case task, ok := <-p.tasks:
						if !ok {
							return
						}
						task.Run()
						p.executed.Add(1)
					default:
						return
					}
				}
			}
		}
	}()
}

// controlLoop evaluates load and adjusts the worker count with hysteresis
// on both edges: BoostTicks consecutive hot samples before scaling up,
// CooldownTicks consecutive idle samples before scaling back down.
func (p *Pool) controlLoop() {
	defer p.ctlWg.Done()
	t := time.NewTicker(p.opts.EvalInterval)
	defer t.Stop()
	for {
		select {
		case <-p.stopCh:
			return
		case <-t.C:
		}
		depth := len(p.tasks)
		cur := int(p.workers.Load())
		// Hot on queue backlog OR on windowed submit rate: a CPU-bound
		// burst served from cache keeps the queue near-empty while the
		// rate counter (marked on every submit) still sees it.
		hot := depth >= p.opts.BoostQueueDepth
		if !hot && p.opts.BoostSubmitRate > 0 {
			hot = p.rate.Rate() >= p.opts.BoostSubmitRate
		}
		switch {
		case hot && cur < p.opts.MaxWorkers:
			p.calm = 0
			p.hot++
			if p.hot < p.opts.BoostTicks {
				break
			}
			// Burst confirmed: add workers aggressively (double).
			add := cur
			if cur+add > p.opts.MaxWorkers {
				add = p.opts.MaxWorkers - cur
			}
			for i := 0; i < add; i++ {
				p.spawnWorker()
			}
			p.boosts.Add(1)
			p.hot = 0
		case !hot && depth == 0 && cur > 1:
			// !hot matters at MaxWorkers: a rate-hot burst served from
			// cache keeps depth at 0, which must not read as calm.
			p.hot = 0
			p.calm++
			if p.calm >= p.opts.CooldownTicks {
				// Calm long enough: retire all extra workers.
				for i := cur; i > 1; i-- {
					select {
					case p.quitCh <- struct{}{}:
						p.workers.Add(-1)
					default:
					}
				}
				p.shrinks.Add(1)
				p.calm = 0
			}
		default:
			p.calm = 0
			p.hot = 0
		}
	}
}

// SubmitTask enqueues a task, blocking when the queue is full (natural
// backpressure that the controller observes as depth). Allocation-free
// when t is a reused object.
func (p *Pool) SubmitTask(t Task) error {
	if p.stopped.Load() {
		return ErrStopped
	}
	p.rate.Mark(1)
	select {
	case p.tasks <- t:
		return nil
	case <-p.stopCh:
		return ErrStopped
	}
}

// Submit enqueues a plain closure.
func (p *Pool) Submit(task func()) error {
	return p.SubmitTask(funcTask(task))
}

// SubmitWait runs the task through the pool and waits for completion.
func (p *Pool) SubmitWait(task func()) error {
	done := make(chan struct{})
	if err := p.Submit(func() {
		task()
		close(done)
	}); err != nil {
		return err
	}
	<-done
	return nil
}

// Workers returns the current worker count.
func (p *Pool) Workers() int { return int(p.workers.Load()) }

// Mode reports single vs boost.
func (p *Pool) Mode() Mode {
	if p.Workers() > 1 {
		return Boost
	}
	return Single
}

// Stats summarizes controller activity.
type Stats struct {
	Workers    int
	MaxWorkers int
	Boosts     int64
	Shrinks    int64
	Executed   int64
	Backlog    int
	SubmitRate float64 // submissions/sec over the recent window
}

// Stats returns a snapshot.
func (p *Pool) Stats() Stats {
	return Stats{
		Workers:    p.Workers(),
		MaxWorkers: p.opts.MaxWorkers,
		Boosts:     p.boosts.Load(),
		Shrinks:    p.shrinks.Load(),
		Executed:   p.executed.Load(),
		Backlog:    len(p.tasks),
		SubmitRate: p.rate.Rate(),
	}
}

// Stop stops the controller and all workers, then drains anything still
// queued so no SubmitWait caller is left blocked on a task that never
// runs (a Submit racing Stop can land a task after the workers exit).
func (p *Pool) Stop() {
	if p.stopped.Swap(true) {
		return
	}
	close(p.stopCh)
	p.ctlWg.Wait()
	p.wg.Wait()
	for {
		select {
		case task := <-p.tasks:
			task.Run()
			p.executed.Add(1)
		default:
			return
		}
	}
}
