package elastic

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolExecutesTasks(t *testing.T) {
	p := NewPool(PoolOptions{})
	defer p.Stop()
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		p.Submit(func() { n.Add(1); wg.Done() })
	}
	wg.Wait()
	if n.Load() != 100 {
		t.Fatalf("executed %d", n.Load())
	}
}

func TestPoolStartsSingle(t *testing.T) {
	p := NewPool(PoolOptions{MaxWorkers: 8})
	defer p.Stop()
	if p.Workers() != 1 || p.Mode() != Single {
		t.Fatalf("workers=%d mode=%v", p.Workers(), p.Mode())
	}
	if Single.String() != "single" || Boost.String() != "boost" {
		t.Fatal("mode names")
	}
}

func TestPoolFixedMode(t *testing.T) {
	p := NewPool(PoolOptions{MaxWorkers: 8, Fixed: 4})
	defer p.Stop()
	if p.Workers() != 4 {
		t.Fatalf("fixed workers %d", p.Workers())
	}
	// Fixed pools never scale.
	time.Sleep(50 * time.Millisecond)
	if p.Workers() != 4 {
		t.Fatalf("fixed pool scaled to %d", p.Workers())
	}
}

func TestPoolFixedClampedToMax(t *testing.T) {
	p := NewPool(PoolOptions{MaxWorkers: 2, Fixed: 10})
	defer p.Stop()
	if p.Workers() != 2 {
		t.Fatalf("clamp failed: %d", p.Workers())
	}
}

func TestPoolBoostsUnderBurst(t *testing.T) {
	p := NewPool(PoolOptions{
		MaxWorkers:      4,
		QueueSize:       256,
		BoostQueueDepth: 8,
		EvalInterval:    5 * time.Millisecond,
	})
	defer p.Stop()
	// Saturate with slow tasks to build a backlog.
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		p.Submit(func() { time.Sleep(time.Millisecond); wg.Done() })
	}
	deadline := time.Now().Add(2 * time.Second)
	for p.Workers() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if p.Workers() < 2 {
		t.Fatalf("never boosted: %d workers, stats %+v", p.Workers(), p.Stats())
	}
	if p.Mode() != Boost {
		t.Fatal("mode should be boost")
	}
	wg.Wait()
	if p.Stats().Boosts == 0 {
		t.Fatal("boost counter zero")
	}
}

func TestPoolScalesBackAfterCalm(t *testing.T) {
	p := NewPool(PoolOptions{
		MaxWorkers:      4,
		QueueSize:       64,
		BoostQueueDepth: 4,
		EvalInterval:    2 * time.Millisecond,
		CooldownTicks:   3,
	})
	defer p.Stop()
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		p.Submit(func() { time.Sleep(500 * time.Microsecond); wg.Done() })
	}
	wg.Wait()
	deadline := time.Now().Add(2 * time.Second)
	for p.Workers() != 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if p.Workers() != 1 {
		t.Fatalf("never scaled down: %d workers", p.Workers())
	}
	if p.Stats().Shrinks == 0 {
		t.Fatal("shrink counter zero")
	}
}

func TestPoolHysteresisNoFlapping(t *testing.T) {
	p := NewPool(PoolOptions{
		MaxWorkers:      4,
		BoostQueueDepth: 1000000, // never boost
		EvalInterval:    time.Millisecond,
		CooldownTicks:   5,
	})
	defer p.Stop()
	for i := 0; i < 50; i++ {
		p.SubmitWait(func() {})
	}
	if p.Stats().Boosts != 0 {
		t.Fatal("boosted without backlog")
	}
	if p.Workers() != 1 {
		t.Fatalf("workers %d", p.Workers())
	}
}

func TestPoolStopDrains(t *testing.T) {
	p := NewPool(PoolOptions{MaxWorkers: 2})
	var n atomic.Int64
	for i := 0; i < 50; i++ {
		p.Submit(func() { n.Add(1) })
	}
	p.Stop()
	if n.Load() != 50 {
		t.Fatalf("drained %d/50", n.Load())
	}
	if err := p.Submit(func() {}); err != ErrStopped {
		t.Fatalf("submit after stop: %v", err)
	}
	if err := p.SubmitWait(func() {}); err != ErrStopped {
		t.Fatalf("submitwait after stop: %v", err)
	}
	p.Stop() // idempotent
}

func TestSubmitWaitRuns(t *testing.T) {
	p := NewPool(PoolOptions{})
	defer p.Stop()
	ran := false
	if err := p.SubmitWait(func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("task did not run")
	}
}

func TestThroughputImprovesWithBoost(t *testing.T) {
	// The fig9 premise: under a CPU-bound burst, boost mode beats single.
	work := func() {
		x := 0
		for i := 0; i < 30000; i++ {
			x += i * i
		}
		_ = x
	}
	run := func(fixed int) time.Duration {
		p := NewPool(PoolOptions{MaxWorkers: 4, Fixed: fixed, QueueSize: 2048})
		defer p.Stop()
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < 300; i++ {
			wg.Add(1)
			p.Submit(func() { work(); wg.Done() })
		}
		wg.Wait()
		return time.Since(start)
	}
	single := run(1)
	multi := run(2)
	if multi >= single {
		t.Skipf("no speedup on this machine (single=%v multi=%v)", single, multi)
	}
}

func TestPoolBoostsOnSubmitRate(t *testing.T) {
	p := NewPool(PoolOptions{
		MaxWorkers:      4,
		QueueSize:       256,
		BoostQueueDepth: 1000000, // depth trigger effectively off
		BoostSubmitRate: 100,     // tasks/sec
		EvalInterval:    5 * time.Millisecond,
	})
	defer p.Stop()
	// Fast tasks: the queue drains as quickly as it fills (depth stays
	// ~0), so only the windowed submit rate can see this burst.
	deadline := time.Now().Add(2 * time.Second)
	for p.Workers() < 2 && time.Now().Before(deadline) {
		for i := 0; i < 50; i++ {
			p.SubmitWait(func() {})
		}
	}
	if p.Workers() < 2 {
		t.Fatalf("rate trigger never boosted: %d workers, stats %+v", p.Workers(), p.Stats())
	}
	if p.Stats().Boosts == 0 {
		t.Fatal("boost counter zero")
	}
}

func TestPoolRateTriggerDisabledByDefault(t *testing.T) {
	p := NewPool(PoolOptions{
		MaxWorkers:      4,
		BoostQueueDepth: 1000000,
		EvalInterval:    time.Millisecond,
	})
	defer p.Stop()
	for i := 0; i < 200; i++ {
		p.SubmitWait(func() {})
	}
	if p.Stats().Boosts != 0 {
		t.Fatalf("boosted on rate with BoostSubmitRate unset: %+v", p.Stats())
	}
}
