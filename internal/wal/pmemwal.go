package wal

import (
	"fmt"
	"sync"
	"time"

	"tierbase/internal/pmem"
)

// PMemLog implements the paper's WAL-PMem strategy (§4.3): every append is
// synchronously persisted to a PMem ring buffer (overcoming the disk IOPS
// bottleneck while keeping per-transaction durability), and a background
// drainer batch-moves records to a conventional file-backed Log, keeping
// the ring small.
type PMemLog struct {
	ring *pmem.Ring
	back *Log // slower durable backing store; nil means ring-only

	mu       sync.Mutex
	closed   bool
	stopCh   chan struct{}
	doneCh   chan struct{}
	drainErr error
	appends  int64

	// drainMu serializes ring→backing moves. Drains run from the
	// background loop, from Append backpressure, from Close, and from
	// Rotate; without the lock two concurrent drains could interleave
	// their batches out of append order in the backing log.
	drainMu sync.Mutex

	// DrainBatch is the max records moved per drain cycle.
	DrainBatch int
	// DrainEvery is the drain interval.
	DrainEvery time.Duration
}

// NewPMemLog builds a PMem-backed WAL. back may be nil to keep records only
// in the ring (pure PMem persistence). The caller owns the ring's device.
func NewPMemLog(ring *pmem.Ring, back *Log) *PMemLog {
	l := &PMemLog{
		ring:       ring,
		back:       back,
		stopCh:     make(chan struct{}),
		doneCh:     make(chan struct{}),
		DrainBatch: 256,
		DrainEvery: 50 * time.Millisecond,
	}
	go l.drainLoop()
	return l
}

// Append persists one record to PMem before returning (per-transaction
// durability). If the ring is full it drains synchronously and retries.
func (l *PMemLog) Append(payload []byte) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.drainErr != nil {
		err := l.drainErr
		l.mu.Unlock()
		return err
	}
	l.mu.Unlock()

	for {
		_, err := l.ring.Append(payload)
		if err == nil {
			l.mu.Lock()
			l.appends++
			l.mu.Unlock()
			return nil
		}
		if err != pmem.ErrRingFull {
			return fmt.Errorf("wal: pmem append: %w", err)
		}
		// Backpressure: drain synchronously to make room.
		if derr := l.drainOnce(); derr != nil {
			return derr
		}
	}
}

// drainOnce moves up to DrainBatch records from the ring to the backing log.
func (l *PMemLog) drainOnce() error {
	l.drainMu.Lock()
	defer l.drainMu.Unlock()
	return l.drainLocked()
}

// drainLocked is drainOnce's body; caller holds drainMu.
func (l *PMemLog) drainLocked() error {
	batch, err := l.ring.ConsumeBatch(l.DrainBatch)
	if err != nil {
		return fmt.Errorf("wal: pmem drain: %w", err)
	}
	if l.back == nil || len(batch) == 0 {
		return nil
	}
	for _, rec := range batch {
		if err := l.back.Append(rec); err != nil {
			return fmt.Errorf("wal: pmem drain backing append: %w", err)
		}
	}
	return l.back.Sync()
}

func (l *PMemLog) drainLoop() {
	defer close(l.doneCh)
	t := time.NewTicker(l.DrainEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := l.drainOnce(); err != nil {
				l.mu.Lock()
				if l.drainErr == nil {
					l.drainErr = err
				}
				l.mu.Unlock()
				return
			}
		case <-l.stopCh:
			return
		}
	}
}

// Sync is a no-op: every append is already durable in PMem.
func (l *PMemLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.drainErr
}

// Appends reports the number of appended records.
func (l *PMemLog) Appends() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends
}

// PendingBytes reports unmoved bytes still in the ring.
func (l *PMemLog) PendingBytes() int64 { return l.ring.Len() }

// Close stops the drainer, moves remaining records to the backing log, and
// closes the backing log.
func (l *PMemLog) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.stopCh)
	<-l.doneCh
	for l.ring.Len() > 0 {
		if err := l.drainOnce(); err != nil {
			return err
		}
		if l.back == nil {
			break
		}
	}
	if l.back != nil {
		return l.back.Close()
	}
	return nil
}

// Rotate drains the ring into the backing log and rotates it, returning
// the new active segment's sequence number. Callers serialize Rotate
// against their own Appends (the LSM holds its commit lock), which
// guarantees no record written after Rotate can land in a pre-rotation
// segment — the invariant RemoveBefore reclamation rests on. Records of
// the OLD memtable that the background drainer races into the new
// segment are harmless: replay filters them by sequence number, they
// are merely retained one rotation longer. A ring-only log (no backing
// store) returns segment 0, which callers treat as "nothing to
// reclaim".
func (l *PMemLog) Rotate() (int, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	if err := l.drainErr; err != nil {
		l.mu.Unlock()
		return 0, err
	}
	l.mu.Unlock()
	if l.back == nil {
		return 0, nil
	}
	l.drainMu.Lock()
	defer l.drainMu.Unlock()
	for l.ring.Len() > 0 {
		if err := l.drainLocked(); err != nil {
			return 0, err
		}
	}
	return l.back.Rotate()
}

// RemoveBefore reclaims checkpointed backing-log segments (see
// Log.RemoveBefore). Ring-only logs have nothing to reclaim.
func (l *PMemLog) RemoveBefore(seq int) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.mu.Unlock()
	if l.back == nil {
		return nil
	}
	return l.back.RemoveBefore(seq)
}

// Appender is the minimal WAL interface shared by Log and PMemLog; the
// engine and cache tiers depend only on this.
type Appender interface {
	Append(payload []byte) error
	Sync() error
	Close() error
}

// Rotator is the optional segment-reclamation interface: an Appender
// that can seal its active segment and delete checkpointed ones. The
// LSM type-switches on it at memtable rotation and flush install, so
// any WAL implementing it — file-backed or PMem-fronted — gets its
// space reclaimed instead of growing forever.
type Rotator interface {
	Rotate() (int, error)
	RemoveBefore(seq int) error
}

var (
	_ Appender = (*Log)(nil)
	_ Appender = (*PMemLog)(nil)
	_ Rotator  = (*Log)(nil)
	_ Rotator  = (*PMemLog)(nil)
)
