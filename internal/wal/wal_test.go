package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"tierbase/internal/pmem"
)

func openTestLog(t *testing.T, opts Options) *Log {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestAppendReplay(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, Options{Dir: dir, Policy: SyncAlways})
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("record-%03d", i))
		want = append(want, p)
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	if err := Replay(dir, func(p []byte) error {
		cp := append([]byte(nil), p...)
		got = append(got, cp)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestReplayEmptyDir(t *testing.T) {
	if err := Replay(t.TempDir(), func([]byte) error { t.Fatal("no records expected"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := Replay(filepath.Join(t.TempDir(), "missing"), func([]byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, Options{Dir: dir, Policy: SyncAlways, MaxSegmentBytes: 256})
	for i := 0; i < 50; i++ {
		if err := l.Append(bytes.Repeat([]byte("x"), 32)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotation, got %d segments", len(segs))
	}
	var count int
	if err := Replay(dir, func(p []byte) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 50 {
		t.Fatalf("replayed %d records across segments, want 50", count)
	}
}

func TestReopenAppends(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, Options{Dir: dir, Policy: SyncAlways})
	l.Append([]byte("first"))
	l.Close()
	l2 := openTestLog(t, Options{Dir: dir, Policy: SyncAlways})
	l2.Append([]byte("second"))
	l2.Close()
	var got []string
	Replay(dir, func(p []byte) error { got = append(got, string(p)); return nil })
	if len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Fatalf("got %v", got)
	}
}

func TestTornTailIgnored(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, Options{Dir: dir, Policy: SyncAlways})
	l.Append([]byte("intact"))
	l.Close()
	// Simulate a torn write: append garbage half-record to the segment.
	segs, _ := listSegments(dir)
	f, err := os.OpenFile(segName(dir, segs[len(segs)-1]), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{10, 0, 0, 0, 1, 2}) // header claims 10 bytes; truncated
	f.Close()
	var got []string
	if err := Replay(dir, func(p []byte) error { got = append(got, string(p)); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "intact" {
		t.Fatalf("got %v", got)
	}
}

func TestCorruptTailChecksumIgnored(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, Options{Dir: dir, Policy: SyncAlways})
	l.Append([]byte("good"))
	l.Close()
	segs, _ := listSegments(dir)
	f, _ := os.OpenFile(segName(dir, segs[len(segs)-1]), os.O_WRONLY|os.O_APPEND, 0)
	// Full-length record with a bad CRC.
	f.Write([]byte{3, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 'b', 'a', 'd'})
	f.Close()
	var got []string
	if err := Replay(dir, func(p []byte) error { got = append(got, string(p)); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestTruncate(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, Options{Dir: dir, Policy: SyncAlways})
	l.Append([]byte("before"))
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("after"))
	l.Close()
	var got []string
	Replay(dir, func(p []byte) error { got = append(got, string(p)); return nil })
	if len(got) != 1 || got[0] != "after" {
		t.Fatalf("got %v", got)
	}
}

func TestRotateRemoveBefore(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, Options{Dir: dir, Policy: SyncAlways})
	l.Append([]byte("gen0-a"))
	l.Append([]byte("gen0-b"))
	seg1, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("gen1-a"))
	seg2, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if seg2 <= seg1 {
		t.Fatalf("rotation did not advance: %d -> %d", seg1, seg2)
	}
	l.Append([]byte("gen2-a"))

	// Reclaim gen0 (checkpointed): records from seg1 on must survive.
	if err := l.RemoveBefore(seg1); err != nil {
		t.Fatal(err)
	}
	l.Close()
	var got []string
	if err := Replay(dir, func(p []byte) error { got = append(got, string(p)); return nil }); err != nil {
		t.Fatal(err)
	}
	want := []string{"gen1-a", "gen2-a"}
	if len(got) != len(want) {
		t.Fatalf("replayed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replayed %v, want %v", got, want)
		}
	}
}

func TestRemoveBeforeNeverDropsActiveSegment(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, Options{Dir: dir, Policy: SyncAlways})
	l.Append([]byte("live"))
	// A bound past the active segment must not delete it.
	if err := l.RemoveBefore(1 << 30); err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("more"))
	l.Close()
	var got []string
	Replay(dir, func(p []byte) error { got = append(got, string(p)); return nil })
	if len(got) != 2 {
		t.Fatalf("active segment lost: %v", got)
	}
}

func TestAppendAfterClose(t *testing.T) {
	l := openTestLog(t, Options{Policy: SyncAlways})
	l.Close()
	if err := l.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if err := l.Sync(); err != ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestSyncIntervalPolicy(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, Options{Dir: dir, Policy: SyncInterval, SyncEvery: 20 * time.Millisecond})
	for i := 0; i < 10; i++ {
		l.Append([]byte("interval"))
	}
	time.Sleep(80 * time.Millisecond)
	if l.Syncs() == 0 {
		t.Fatal("interval sync never fired")
	}
	l.Close()
	var count int
	Replay(dir, func([]byte) error { count++; return nil })
	if count != 10 {
		t.Fatalf("replayed %d", count)
	}
}

func TestSyncNeverStillReplaysAfterClose(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, Options{Dir: dir, Policy: SyncNever})
	l.Append([]byte("lazy"))
	l.Close() // close flushes
	var count int
	Replay(dir, func([]byte) error { count++; return nil })
	if count != 1 {
		t.Fatalf("replayed %d", count)
	}
}

func TestAppendsCounter(t *testing.T) {
	l := openTestLog(t, Options{Policy: SyncNever})
	defer l.Close()
	for i := 0; i < 7; i++ {
		l.Append([]byte("n"))
	}
	if l.Appends() != 7 {
		t.Fatalf("appends = %d", l.Appends())
	}
}

func TestReplayPropertyRoundTrip(t *testing.T) {
	f := func(payloads [][]byte) bool {
		dir, err := os.MkdirTemp("", "walprop")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		l, err := Open(Options{Dir: dir, Policy: SyncNever, MaxSegmentBytes: 512})
		if err != nil {
			return false
		}
		for _, p := range payloads {
			if len(p) > 300 {
				p = p[:300]
			}
			if err := l.Append(p); err != nil {
				return false
			}
		}
		l.Close()
		i := 0
		err = Replay(dir, func(p []byte) error {
			want := payloads[i]
			if len(want) > 300 {
				want = want[:300]
			}
			if !bytes.Equal(p, want) {
				return fmt.Errorf("mismatch at %d", i)
			}
			i++
			return nil
		})
		return err == nil && i == len(payloads)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// --- PMemLog ---

func newTestPMemLog(t *testing.T, backDir string) (*PMemLog, *pmem.Device) {
	t.Helper()
	dev := pmem.OpenVolatile(64<<10, pmem.Latency{})
	ring, err := pmem.NewRing(dev)
	if err != nil {
		t.Fatal(err)
	}
	var back *Log
	if backDir != "" {
		back, err = Open(Options{Dir: backDir, Policy: SyncNever})
		if err != nil {
			t.Fatal(err)
		}
	}
	return NewPMemLog(ring, back), dev
}

func TestPMemLogAppendDrain(t *testing.T) {
	dir := t.TempDir()
	l, _ := newTestPMemLog(t, dir)
	for i := 0; i < 100; i++ {
		if err := l.Append([]byte(fmt.Sprintf("p-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var got []string
	Replay(dir, func(p []byte) error { got = append(got, string(p)); return nil })
	if len(got) != 100 {
		t.Fatalf("backing log has %d records, want 100", len(got))
	}
	if got[0] != "p-0" || got[99] != "p-99" {
		t.Fatalf("order broken: first=%s last=%s", got[0], got[99])
	}
}

func TestPMemLogBackpressure(t *testing.T) {
	// Tiny ring forces synchronous drains under load.
	dev := pmem.OpenVolatile(512, pmem.Latency{})
	ring, err := pmem.NewRing(dev)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	back, err := Open(Options{Dir: dir, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	l := NewPMemLog(ring, back)
	for i := 0; i < 200; i++ {
		if err := l.Append(bytes.Repeat([]byte("z"), 64)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var count int
	Replay(dir, func([]byte) error { count++; return nil })
	if count != 200 {
		t.Fatalf("drained %d records, want 200", count)
	}
}

func TestPMemLogRotateRemoveBefore(t *testing.T) {
	dir := t.TempDir()
	l, _ := newTestPMemLog(t, dir)
	for i := 0; i < 50; i++ {
		if err := l.Append([]byte(fmt.Sprintf("old-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	seg, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if seg <= 0 {
		t.Fatalf("rotate returned segment %d, want > 0", seg)
	}
	for i := 0; i < 50; i++ {
		if err := l.Append([]byte(fmt.Sprintf("new-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.RemoveBefore(seg); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Every pre-rotation record was drained into segments < seg, so
	// after RemoveBefore only post-rotation records survive replay.
	var got []string
	if err := Replay(dir, func(p []byte) error { got = append(got, string(p)); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("replayed %d records, want 50", len(got))
	}
	for i, p := range got {
		if want := fmt.Sprintf("new-%d", i); p != want {
			t.Fatalf("record %d = %q, want %q", i, p, want)
		}
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		if s < seg {
			t.Fatalf("segment %d survived RemoveBefore(%d)", s, seg)
		}
	}
}

func TestPMemLogRotateRingOnly(t *testing.T) {
	l, _ := newTestPMemLog(t, "")
	if err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	seg, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if seg != 0 {
		t.Fatalf("ring-only rotate returned %d, want 0 (nothing to reclaim)", seg)
	}
	if err := l.RemoveBefore(7); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPMemLogRingOnly(t *testing.T) {
	l, _ := newTestPMemLog(t, "")
	if err := l.Append([]byte("ring-only")); err != nil {
		t.Fatal(err)
	}
	if l.PendingBytes() == 0 {
		t.Fatal("record should sit in ring")
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}
