// Package wal implements the write-ahead log used by the cache tier and the
// LSM storage tier for durability. Two backends are provided:
//
//   - Log: segmented append-only files on disk (the SSD path), with
//     configurable sync policy (always / every interval / never), matching
//     the paper's "WAL mode ... uses SSDs and asynchronous disk flushes
//     every second" (§6.2.2);
//   - PMemLog (pmemwal.go): a persistent-memory ring buffer synced per
//     transaction and batch-drained to a slower backing log, matching
//     "WAL-PMem synchronizes to PMem per transaction" (§4.3, §6.2.2).
//
// Record format: 4-byte little-endian length, 4-byte CRC32C, payload.
// Replay stops at the first torn or corrupt record, which is the correct
// crash-recovery semantic for an append-only log.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// SyncPolicy controls when appended records are made durable.
type SyncPolicy int

// Sync policies.
const (
	// SyncAlways fsyncs after every append (highest durability, lowest perf).
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most once per SyncEvery duration (Redis
	// appendfsync-everysec analog; the paper's default WAL mode).
	SyncInterval
	// SyncNever leaves syncing to the OS.
	SyncNever
)

const (
	recHeaderSize = 8
	segPrefix     = "wal-"
	segSuffix     = ".log"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options configures a Log.
type Options struct {
	Dir             string
	Policy          SyncPolicy
	SyncEvery       time.Duration // used by SyncInterval; default 1s
	MaxSegmentBytes int64         // rotate when the active segment exceeds this; default 64 MiB
}

func (o *Options) fill() {
	if o.SyncEvery <= 0 {
		o.SyncEvery = time.Second
	}
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 64 << 20
	}
}

// Log is a segmented append-only write-ahead log.
type Log struct {
	mu      sync.Mutex
	opts    Options
	seq     int // active segment sequence number
	f       *os.File
	w       *bufio.Writer
	size    int64
	closed  bool
	stopCh  chan struct{}
	doneCh  chan struct{}
	syncErr error
	appends int64
	syncs   int64
}

// Open creates or appends to a log in dir.
func Open(opts Options) (*Log, error) {
	opts.fill()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir: %w", err)
	}
	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	seq := 1
	if len(segs) > 0 {
		seq = segs[len(segs)-1]
	}
	l := &Log{opts: opts, seq: seq, stopCh: make(chan struct{}), doneCh: make(chan struct{})}
	if err := l.openSegment(seq); err != nil {
		return nil, err
	}
	if opts.Policy == SyncInterval {
		go l.syncLoop()
	} else {
		close(l.doneCh)
	}
	return l, nil
}

func segName(dir string, seq int) string {
	return filepath.Join(dir, fmt.Sprintf("%s%06d%s", segPrefix, seq, segSuffix))
}

func listSegments(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: readdir: %w", err)
	}
	var segs []int
	for _, e := range ents {
		name := e.Name()
		var seq int
		if n, _ := fmt.Sscanf(name, segPrefix+"%d"+segSuffix, &seq); n == 1 {
			segs = append(segs, seq)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

func (l *Log) openSegment(seq int) error {
	f, err := os.OpenFile(segName(l.opts.Dir, seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: stat segment: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriterSize(f, 64<<10)
	l.size = st.Size()
	l.seq = seq
	return nil
}

func (l *Log) syncLoop() {
	defer close(l.doneCh)
	t := time.NewTicker(l.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if !l.closed {
				if err := l.flushSyncLocked(); err != nil && l.syncErr == nil {
					l.syncErr = err
				}
			}
			l.mu.Unlock()
		case <-l.stopCh:
			return
		}
	}
}

func (l *Log) flushSyncLocked() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	l.syncs++
	return l.f.Sync()
}

// ErrClosed is returned after Close.
var ErrClosed = errors.New("wal: closed")

// Append writes one record; durability follows the sync policy.
func (l *Log) Append(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.syncErr != nil {
		return l.syncErr
	}
	var hdr [recHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(recHeaderSize + len(payload))
	l.appends++
	if l.opts.Policy == SyncAlways {
		if err := l.flushSyncLocked(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	if l.size >= l.opts.MaxSegmentBytes {
		return l.rotateLocked()
	}
	return nil
}

func (l *Log) rotateLocked() error {
	if err := l.flushSyncLocked(); err != nil {
		return fmt.Errorf("wal: rotate flush: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: rotate close: %w", err)
	}
	return l.openSegment(l.seq + 1)
}

// Sync forces buffered records to durable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.flushSyncLocked()
}

// Appends reports the number of appended records (monitoring).
func (l *Log) Appends() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends
}

// Syncs reports the number of sync operations performed.
func (l *Log) Syncs() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncs
}

// Close flushes, syncs and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	err := l.flushSyncLocked()
	cerr := l.f.Close()
	l.mu.Unlock()
	close(l.stopCh)
	<-l.doneCh
	if err != nil {
		return err
	}
	return cerr
}

// Rotate seals the active segment (flushing and syncing buffered records)
// and starts a new one, returning the new segment's sequence number. The
// LSM uses this at memtable rotation: every record of the sealed memtable
// lives in segments older than the returned sequence, so once that
// memtable is flushed to an SSTable those segments can be reclaimed with
// RemoveBefore — without ever truncating records the active memtable
// still needs for crash recovery.
func (l *Log) Rotate() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if err := l.rotateLocked(); err != nil {
		return 0, err
	}
	return l.seq, nil
}

// RemoveBefore deletes all segments with sequence < seq. The caller
// asserts that every record in those segments has been checkpointed
// (flushed into SSTables and recorded in the manifest).
func (l *Log) RemoveBefore(seq int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	segs, err := listSegments(l.opts.Dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if s >= seq || s == l.seq {
			continue
		}
		if err := os.Remove(segName(l.opts.Dir, s)); err != nil {
			return fmt.Errorf("wal: remove segment: %w", err)
		}
	}
	return nil
}

// Truncate removes all segments and starts a fresh one. Called after the
// logged state has been checkpointed elsewhere (e.g. memtable flushed).
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	segs, err := listSegments(l.opts.Dir)
	if err != nil {
		return err
	}
	for _, seq := range segs {
		if err := os.Remove(segName(l.opts.Dir, seq)); err != nil {
			return fmt.Errorf("wal: truncate: %w", err)
		}
	}
	return l.openSegment(l.seq + 1)
}

// Replay invokes fn for every intact record across all segments in dir, in
// append order. A torn or corrupt tail record terminates replay without
// error (crash semantics); corruption in the middle of a segment returns
// an error.
func Replay(dir string, fn func(payload []byte) error) error {
	segs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) || errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	for i, seq := range segs {
		last := i == len(segs)-1
		if err := replaySegment(segName(dir, seq), last, fn); err != nil {
			return err
		}
	}
	return nil
}

func replaySegment(path string, lastSegment bool, fn func([]byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("wal: replay open: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return fmt.Errorf("wal: replay stat: %w", err)
	}
	remaining := fi.Size()
	r := bufio.NewReaderSize(f, 64<<10)
	var hdr [recHeaderSize]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			if err == io.ErrUnexpectedEOF && lastSegment {
				return nil // torn header at tail
			}
			return fmt.Errorf("wal: replay %s: %w", path, err)
		}
		remaining -= recHeaderSize
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if int64(n) > remaining {
			// The claimed length overruns the file: a torn length field at
			// the tail, or mid-log corruption. Checking BEFORE allocating
			// keeps a flipped length byte (up to 4 GiB) from sizing the
			// buffer it asks for.
			if lastSegment {
				return nil
			}
			return fmt.Errorf("wal: replay %s: corrupt record length mid-log", path)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			if (err == io.ErrUnexpectedEOF || err == io.EOF) && lastSegment {
				return nil // torn payload at tail
			}
			return fmt.Errorf("wal: replay %s: %w", path, err)
		}
		remaining -= int64(n)
		if crc32.Checksum(payload, crcTable) != want {
			if lastSegment {
				return nil // torn write detected by checksum
			}
			return fmt.Errorf("wal: replay %s: corrupt record mid-log", path)
		}
		if err := fn(payload); err != nil {
			return err
		}
	}
}
