package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"testing"
)

// fuzzRecord frames one payload the way the appender does: 4-byte LE
// length, 4-byte CRC32C, payload.
func fuzzRecord(payload []byte) []byte {
	rec := make([]byte, recHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(payload, crcTable))
	copy(rec[recHeaderSize:], payload)
	return rec
}

// FuzzReplay feeds arbitrary bytes to the segment replay decoder as a
// tail segment. Replay runs at every startup against whatever a crash
// left on disk, so it must never panic and never allocate from a
// corrupt length field (a flipped length byte must not size a buffer) —
// torn tails end replay cleanly, anything decoded intact reaches the
// callback whole.
func FuzzReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(fuzzRecord([]byte("hello")))
	f.Add(append(fuzzRecord([]byte("a")), fuzzRecord([]byte("bb"))...))
	f.Add(fuzzRecord([]byte("torn"))[:6])
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	corrupt := fuzzRecord([]byte("flip"))
	corrupt[recHeaderSize] ^= 0x01
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(segName(dir, 1), data, 0o644); err != nil {
			t.Fatal(err)
		}
		total := 0
		err := Replay(dir, func(p []byte) error {
			for _, b := range p {
				total += int(b) // every delivered payload must be readable
			}
			return nil
		})
		_ = err // malformed input may error; it must not panic
	})
}
