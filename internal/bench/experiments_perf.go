package bench

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"time"

	"tierbase/internal/baselines"
	"tierbase/internal/compress"
	"tierbase/internal/engine"
	"tierbase/internal/pmem"
	"tierbase/internal/workload"
)

// RunFig7 reproduces Figure 7: throughput and p99 latency of TierBase,
// Redis, Memcached and Dragonfly in single-thread and multi-thread modes
// across YCSB load / A / B phases.
func RunFig7(o RunOpts) (*Result, error) {
	o.fill()
	nRecords := int64(o.n(5000))
	nOps := o.n(20000)
	res := &Result{
		ID: "fig7", Title: "Caching systems performance (kqps / p99 µs)",
		Header: []string{"system", "mode", "phase", "kqps", "p99_us"},
	}

	type sut struct {
		name, mode string
		sys        kvOp
		workers    int
		close      func()
	}
	var suts []sut

	mkTB := func(name string, threads, workers int) (sut, error) {
		s, err := BuildTierBase(TBConfig{Name: name, Threads: threads}, "")
		if err != nil {
			return sut{}, err
		}
		mode := "single"
		if threads > 1 {
			mode = "multi"
		}
		return sut{name: "tierbase", mode: mode, sys: s, workers: workers, close: func() { s.Close() }}, nil
	}
	tbS, err := mkTB("tierbase-s", 1, 4)
	if err != nil {
		return nil, err
	}
	suts = append(suts, tbS)
	tbM, err := mkTB("tierbase-m", 4, 4)
	if err != nil {
		return nil, err
	}
	suts = append(suts, tbM)

	redisS, err := baselines.NewRedisLike("", 1)
	if err != nil {
		return nil, err
	}
	suts = append(suts, sut{name: "redis", mode: "single", sys: redisS, workers: 4, close: func() { redisS.Close() }})
	redisM, err := baselines.NewRedisLike("", 4)
	if err != nil {
		return nil, err
	}
	suts = append(suts, sut{name: "redis", mode: "multi", sys: redisM, workers: 4, close: func() { redisM.Close() }})

	mc := baselines.NewMemcachedLike(0, 4)
	suts = append(suts, sut{name: "memcached", mode: "multi", sys: mc, workers: 4, close: func() { mc.Close() }})
	df := baselines.NewDragonflyLike(4)
	suts = append(suts, sut{name: "dragonfly", mode: "multi", sys: df, workers: 4, close: func() { df.Close() }})

	ds := workload.NewCities()
	for _, st := range suts {
		// Load phase.
		spec := workload.WorkloadA(nRecords, ds)
		loadOps := spec.LoadOps()
		dr := drive(st.sys, loadOps, st.workers)
		res.AddRow(st.name, st.mode, "load", fmtQPS(dr.QPS), fmtDur(dr.P99))
		// Workload A and B run phases.
		for _, ph := range []struct {
			name string
			spec workload.Spec
		}{
			{"A", workload.WorkloadA(nRecords, ds)},
			{"B", workload.WorkloadB(nRecords, ds)},
		} {
			ops := NewOpsMulti(ph.spec, nOps, st.workers)
			dr := drive(st.sys, ops, st.workers)
			res.AddRow(st.name, st.mode, ph.name, fmtQPS(dr.QPS), fmtDur(dr.P99))
		}
		st.close()
	}
	res.AddNote("paper shape: single-thread TierBase≈Redis > Memcached/Dragonfly; multi-thread Memcached/Dragonfly > TierBase/Redis")
	return res, nil
}

// NewOpsMulti generates n run-phase ops from independent per-worker
// generator streams (concatenated), so concurrent workers replay distinct
// sequences.
func NewOpsMulti(spec workload.Spec, n, workers int) []workload.Op {
	if workers < 1 {
		workers = 1
	}
	per := n / workers
	var out []workload.Op
	for w := 0; w < workers; w++ {
		g := workload.NewGenerator(spec, int64(w))
		out = append(out, g.Ops(per)...)
	}
	return out
}

// RunFig8 reproduces Figure 8: TierBase under four persistence mechanisms
// (WAL, WAL-PMem, write-back, write-through) in single-thread mode.
func RunFig8(o RunOpts) (*Result, error) {
	o.fill()
	nRecords := int64(o.n(3000))
	nOps := o.n(12000)
	res := &Result{
		ID: "fig8", Title: "Persistence mechanisms (kqps / p99 µs)",
		Header: []string{"mechanism", "phase", "kqps", "p99_us"},
	}
	ds := workload.NewCities()
	expected := nRecords * int64(ds.AvgRecordSize()+16)

	configs := []TBConfig{
		{Name: "wal", Threads: 1, Persist: "wal"},
		{Name: "wal-pmem", Threads: 1, Persist: "wal-pmem", PMemLatency: pmem.DefaultLatency},
		{Name: "write-back", Threads: 1, Persist: "wb", CacheRatioX: 1, ExpectedLogicalBytes: expected, RTT: missRTT},
		{Name: "write-through", Threads: 1, Persist: "wt", CacheRatioX: 1, ExpectedLogicalBytes: expected, RTT: missRTT},
	}
	for _, cfg := range configs {
		dir := filepath.Join(o.Dir, "fig8-"+cfg.Name)
		sys, err := BuildTierBase(cfg, dir)
		if err != nil {
			return nil, err
		}
		spec := workload.WorkloadA(nRecords, ds)
		dr := drive(sys, spec.LoadOps(), 4)
		res.AddRow(cfg.Name, "load", fmtQPS(dr.QPS), fmtDur(dr.P99))
		for _, ph := range []struct {
			name string
			spec workload.Spec
		}{
			{"A", workload.WorkloadA(nRecords, ds)},
			{"B", workload.WorkloadB(nRecords, ds)},
		} {
			ops := NewOpsMulti(ph.spec, nOps, 4)
			dr := drive(sys, ops, 4)
			res.AddRow(cfg.Name, ph.name, fmtQPS(dr.QPS), fmtDur(dr.P99))
		}
		sys.Close()
	}
	res.AddNote("paper shape: write-back > WAL > WAL-PMem > write-through on load/A; gap narrows on read-heavy B")
	return res, nil
}

// RunTable2 reproduces Table 2: compression ratio and SET/GET throughput
// for PBC, Zstd-d(ict analog), Zstd-b(ase analog) and Raw across the
// Cities, KV1 and KV2 datasets.
func RunTable2(o RunOpts) (*Result, error) {
	o.fill()
	nTrain := o.n(500)
	nEval := o.n(2000)
	res := &Result{
		ID: "tab2", Title: "Compression techniques",
		Header: []string{"dataset", "method", "comp_ratio", "overall_ratio", "set_kqps", "get_kqps"},
	}
	for _, ds := range []workload.Dataset{workload.NewCities(), workload.NewKV1(), workload.NewKV2()} {
		train := workload.Sample(ds, nTrain)
		eval := make([][]byte, nEval)
		for i := range eval {
			eval[i] = ds.Record(int64(100000 + i))
		}
		for _, method := range []struct {
			label, name string
		}{
			{"pbc", "pbc"}, {"zstd-d", "zstd-d"}, {"zstd-b", "zstd-b"}, {"raw", "raw"},
		} {
			c, err := compress.ByName(method.name, 0)
			if err != nil {
				return nil, err
			}
			if err := c.Train(train); err != nil {
				return nil, err
			}
			ratio := compress.MeasureRatio(c, eval)

			// Overall ratio: engine-resident bytes vs raw engine bytes
			// (keys + per-item overhead dilute the value-only ratio, as in
			// the paper's "Overall Comp. Ratio").
			engRaw := engine.New(engine.Options{})
			engC := engine.New(engine.Options{Compressor: c, CompressMin: 16})
			for i, rec := range eval {
				k := fmt.Sprintf("key%09d", i)
				engRaw.Set(k, rec)
				engC.Set(k, rec)
			}
			overall := float64(engC.MemUsed()) / float64(engRaw.MemUsed())

			// SET throughput.
			setOps := make([]workload.Op, nEval)
			for i, rec := range eval {
				setOps[i] = workload.Op{Kind: workload.OpUpdate, Key: fmt.Sprintf("key%09d", i), Value: rec}
			}
			target := engine.New(engine.Options{Compressor: c, CompressMin: 16})
			setDR := drive(engineKV{target}, setOps, 1)
			// GET throughput.
			getOps := make([]workload.Op, nEval)
			for i := range getOps {
				getOps[i] = workload.Op{Kind: workload.OpRead, Key: fmt.Sprintf("key%09d", i%nEval)}
			}
			getDR := drive(engineKV{target}, getOps, 1)

			res.AddRow(ds.Name(), method.label, fmtRatio(ratio), fmtRatio(overall),
				fmtQPS(setDR.QPS), fmtQPS(getDR.QPS))
		}
	}
	res.AddNote("comp_ratio is value-only compressed/raw (lower=better); overall includes keys+engine overhead")
	res.AddNote("paper shape: ratio PBC<Zstd-d<Zstd-b; GET PBC≈Raw>Zstd; SET Raw>pretrained>Zstd-b")
	return res, nil
}

// engineKV adapts a bare engine to the harness op surface.
type engineKV struct{ e *engine.Engine }

func (e engineKV) Set(key string, val []byte) error { return e.e.Set(key, val) }
func (e engineKV) Get(key string) ([]byte, error)   { return e.e.Get(key) }

// RunFig9 reproduces Figure 9: throughput timeline under a workload burst
// for single-thread, elastic and multi-thread TierBase plus single/multi
// Redis. Time is compressed 10x relative to the paper (6 s instead of 60).
// Each command carries a ~10µs processing cost so single-thread capacity
// sits near the paper's ~100 kQPS/core operating point; the Redis series
// are architecture-identical fixed-pool miniatures (see baselines docs).
func RunFig9(o RunOpts) (*Result, error) {
	o.fill()
	res := &Result{
		ID: "fig9", Title: "Elastic threading under burst (kqps per window)",
		Header: []string{"t_ms", "tierbase-s", "tierbase-e", "tierbase-m", "redis-s", "redis-m"},
	}
	nRecords := int64(o.n(2000))
	ds := workload.NewCities()
	spec := workload.WorkloadB(nRecords, ds)
	const opCost = 10 * time.Microsecond

	const (
		window    = 250 * time.Millisecond
		lowPhase  = 1500 * time.Millisecond
		highPhase = 3000 * time.Millisecond
		total     = lowPhase + highPhase + lowPhase
	)
	timeline := func(sys kvOp, workers int) []float64 {
		// Preload.
		for _, op := range spec.LoadOps() {
			sys.Set(op.Key, op.Value)
		}
		var done atomic.Int64
		stop := make(chan struct{})
		lowRate := 100 * time.Microsecond // paced trickle in low phases
		for w := 0; w < workers; w++ {
			g := workload.NewGenerator(spec, int64(w))
			go func() {
				start := time.Now()
				for {
					select {
					case <-stop:
						return
					default:
					}
					op := g.Next()
					if op.Kind == workload.OpRead {
						sys.Get(op.Key)
					} else {
						sys.Set(op.Key, op.Value)
					}
					done.Add(1)
					el := time.Since(start)
					inBurst := el > lowPhase && el <= lowPhase+highPhase
					if !inBurst {
						time.Sleep(lowRate)
					}
				}
			}()
		}
		var samples []float64
		prev := int64(0)
		ticker := time.NewTicker(window)
		defer ticker.Stop()
		deadline := time.Now().Add(total)
		for time.Now().Before(deadline) {
			<-ticker.C
			cur := done.Load()
			samples = append(samples, float64(cur-prev)/window.Seconds())
			prev = cur
		}
		close(stop)
		return samples
	}

	type sysDef struct {
		name    string
		threads int // 0 = elastic
		workers int
	}
	defs := []sysDef{
		{"tierbase-s", 1, 8},
		{"tierbase-e", 0, 8},
		{"tierbase-m", 4, 8},
		{"redis-s", 1, 8},
		{"redis-m", 4, 8},
	}
	series := make([][]float64, len(defs))
	for i, d := range defs {
		sys, err := BuildTierBase(TBConfig{Name: d.name, Threads: d.threads, OpCost: opCost}, "")
		if err != nil {
			return nil, err
		}
		series[i] = timeline(sys, d.workers)
		sys.Close()
	}
	nSamples := len(series[0])
	for i := 1; i < len(series); i++ {
		if len(series[i]) < nSamples {
			nSamples = len(series[i])
		}
	}
	for s := 0; s < nSamples; s++ {
		row := []string{fmt.Sprintf("%d", (s+1)*int(window.Milliseconds()))}
		for i := range defs {
			row = append(row, fmtQPS(series[i][s]))
		}
		res.AddRow(row...)
	}
	res.AddNote("burst window: t in (1500ms, 4500ms]; paper shape: -e matches -s at rest and approaches -m during the burst")
	return res, nil
}
