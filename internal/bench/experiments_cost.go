package bench

import (
	"math"
	"path/filepath"

	"tierbase/internal/baselines"
	"tierbase/internal/core"
	"tierbase/internal/pmem"
	"tierbase/internal/trace"
	"tierbase/internal/workload"
)

// costSUT is one measured system-under-test for a cost experiment.
type costSUT struct {
	name   string
	inst   instanceSpec
	cap    capability
	tiered bool    // price storage tier separately
	mr     float64 // measured miss ratio (tiered configs)
}

// price returns (PC, SC) for the declared workload.
func (s costSUT) price(declQPS, declDataGB float64) (pc, sc float64) {
	if s.tiered {
		return tieredCosts(s.cap, declQPS, declDataGB, s.inst)
	}
	return smoothCosts(s.cap, s.inst, declQPS, declDataGB)
}

// measureTB loads spec's records into cfg and replays nOps mixed ops,
// returning the measured capability.
func measureTB(cfg TBConfig, dir string, spec workload.Spec, nOps, workers int) (costSUT, error) {
	sys, err := BuildTierBase(cfg, dir)
	if err != nil {
		return costSUT{}, err
	}
	defer sys.Close()
	var logical int64
	for _, op := range spec.LoadOps() {
		logical += int64(len(op.Key) + len(op.Value))
		if err := sys.Set(op.Key, op.Value); err != nil {
			return costSUT{}, err
		}
	}
	if err := sys.FlushDirty(); err != nil {
		return costSUT{}, err
	}
	if sys.db != nil {
		sys.db.Flush()
		sys.db.CompactAll()
	}
	ops := NewOpsMulti(spec, nOps, workers)
	dr := drive(sys, ops, workers)
	if err := sys.FlushDirty(); err != nil {
		return costSUT{}, err
	}
	sut := costSUT{
		name: cfg.Name,
		cap: capability{
			qpsPerInst:     dr.QPS,
			dramPerLogical: float64(sys.MemBytes()) / float64(logical),
			pmemPerLogical: float64(sys.PMemBytes()) / float64(logical),
			diskPerLogical: float64(sys.DiskBytes()) / float64(logical),
		},
		tiered: cfg.Persist == "wt" || cfg.Persist == "wb",
	}
	if sys.Tiered() != nil {
		sut.mr = sys.Tiered().MissRatio()
	}
	return sut, nil
}

// measureBaseline does the same for a comparison system. dramMult
// multiplies DRAM (dual-replica deployments).
func measureBaseline(sys baselines.System, spec workload.Spec, nOps, workers int, dramMult float64) costSUT {
	var logical int64
	for _, op := range spec.LoadOps() {
		logical += int64(len(op.Key) + len(op.Value))
		sys.Set(op.Key, op.Value)
	}
	if ls, ok := sys.(*baselines.LSMStore); ok {
		ls.DB().Flush()
		ls.DB().CompactAll()
	}
	ops := NewOpsMulti(spec, nOps, workers)
	dr := drive(sys, ops, workers)
	if dramMult <= 0 {
		dramMult = 1
	}
	return costSUT{
		name: sys.Name(),
		cap: capability{
			qpsPerInst:     dr.QPS,
			dramPerLogical: float64(sys.MemBytes()) * dramMult / float64(logical),
			diskPerLogical: float64(sys.DiskBytes()) / float64(logical),
		},
	}
}

// RunFig10 reproduces Figure 10: cost of caching systems under 50/50 and
// 95/5 mixes. The declared workload is 10 GB with QPS = 0.8 × the
// single-thread TierBase reference (the paper's 80k-QPS-vs-100k-capable
// positioning).
func RunFig10(o RunOpts) (*Result, error) {
	o.fill()
	nRecords := int64(o.n(3000))
	nOps := o.n(12000)
	ds := workload.NewCities()
	res := &Result{
		ID: "fig10", Title: "Cost of caching systems",
		Header: []string{"mix", "system", "cost_GB(SC)", "cost_QPS(PC)", "cost"},
	}
	for _, mix := range []struct {
		label string
		spec  workload.Spec
	}{
		{"50/50", workload.WorkloadA(nRecords, ds)},
		{"95/5", workload.WorkloadB(nRecords, ds)},
	} {
		var suts []costSUT
		// TierBase configurations.
		tbConfigs := []struct {
			cfg     TBConfig
			inst    instanceSpec
			workers int
		}{
			{TBConfig{Name: "tierbase-s", Threads: 1}, cacheInst, 4},
			{TBConfig{Name: "tierbase-e", Threads: 0}, cacheInst, 4},
			{TBConfig{Name: "tierbase-zstd", Threads: 1, Compressor: "zstd-d", CompressLevel: 1, TrainOn: ds}, cacheInst, 4},
			{TBConfig{Name: "tierbase-pbc", Threads: 1, Compressor: "pbc", TrainOn: ds}, cacheInst, 4},
			{TBConfig{Name: "tierbase-pmem", Threads: 1, PMem: true, PMemLatency: pmem.DefaultLatency}, pmemInst, 4},
		}
		for _, tc := range tbConfigs {
			sut, err := measureTB(tc.cfg, filepath.Join(o.Dir, "fig10", tc.cfg.Name), mix.spec, nOps, tc.workers)
			if err != nil {
				return nil, err
			}
			sut.inst = tc.inst
			suts = append(suts, sut)
		}
		// Baselines.
		redisS, err := baselines.NewRedisLike("", 1)
		if err != nil {
			return nil, err
		}
		sut := measureBaseline(redisS, mix.spec, nOps, 4, 1)
		sut.name, sut.inst = "redis-s", cacheInst
		redisS.Close()
		suts = append(suts, sut)

		mc := baselines.NewMemcachedLike(0, 4)
		sut = measureBaseline(mc, mix.spec, nOps, 4, 1)
		sut.inst = bigInst
		mc.Close()
		suts = append(suts, sut)

		df := baselines.NewDragonflyLike(4)
		sut = measureBaseline(df, mix.spec, nOps, 4, 1)
		sut.inst = bigInst
		df.Close()
		suts = append(suts, sut)

		// Declared workload relative to the single-thread reference.
		ref := suts[0].cap.qpsPerInst
		declQPS, declData := 0.8*ref, 10.0
		for _, s := range suts {
			pc, sc := s.price(declQPS, declData)
			res.AddRow(mix.label, s.name, fmtF(sc), fmtF(pc), fmtF(math.Max(pc, sc)))
		}
	}
	res.AddNote("declared workload: 10GB, QPS=0.8×MaxPerf(tierbase-s); paper shape: memcached lowest SC among plain caches; pmem/compression cut TierBase SC below memcached; elastic halves PC")
	return res, nil
}

// RunFig11 reproduces Figure 11: cost of databases with persistence.
// Declared workload: 10 GB at QPS = 0.4 × the TierBase-WAL reference
// (the paper's 40k positioning), all on 4c16g instances.
func RunFig11(o RunOpts) (*Result, error) {
	o.fill()
	nRecords := int64(o.n(3000))
	nOps := o.n(10000)
	ds := workload.NewCities()
	expected := nRecords * int64(ds.AvgRecordSize()+16)
	res := &Result{
		ID: "fig11", Title: "Cost of databases with persistence",
		Header: []string{"mix", "system", "SpaceCost", "PerformanceCost", "cost"},
	}
	for _, mix := range []struct {
		label string
		spec  workload.Spec
	}{
		{"50/50", workload.WorkloadA(nRecords, ds)},
		{"95/5", workload.WorkloadB(nRecords, ds)},
	} {
		var suts []costSUT
		tbConfigs := []TBConfig{
			{Name: "tierbase-wal", Threads: 1, Persist: "wal", Replicas: 1},
			{Name: "tierbase-wal-pmem", Threads: 1, Persist: "wal-pmem", Replicas: 1, PMemLatency: pmem.DefaultLatency},
			{Name: "tierbase-wt-10X", Threads: 1, Persist: "wt", CacheRatioX: 10, ExpectedLogicalBytes: expected, RTT: missRTT},
			{Name: "tierbase-wb-10X", Threads: 1, Persist: "wb", CacheRatioX: 10, ExpectedLogicalBytes: expected, Replicas: 1, RTT: missRTT},
		}
		for _, cfg := range tbConfigs {
			sut, err := measureTB(cfg, filepath.Join(o.Dir, "fig11", cfg.Name+mix.label), mix.spec, nOps, 4)
			if err != nil {
				return nil, err
			}
			sut.inst = bigInst
			if sut.tiered {
				sut.inst = cacheInst // cache tier on standard containers; storage priced via storInst
			}
			suts = append(suts, sut)
		}
		// redis-aof dual replica.
		ra, err := baselines.NewRedisLike(filepath.Join(o.Dir, "fig11", "redisaof"+mix.label), 1)
		if err != nil {
			return nil, err
		}
		sut := measureBaseline(ra, mix.spec, nOps, 4, 2)
		sut.inst = bigInst
		ra.Close()
		suts = append(suts, sut)
		// cassandra / hbase.
		cs, err := baselines.NewCassandraLike(filepath.Join(o.Dir, "fig11", "cass"+mix.label))
		if err != nil {
			return nil, err
		}
		sut = measureBaseline(cs, mix.spec, nOps, 4, 1)
		sut.inst = bigInst
		cs.Close()
		suts = append(suts, sut)
		hb, err := baselines.NewHBaseLike(filepath.Join(o.Dir, "fig11", "hbase"+mix.label))
		if err != nil {
			return nil, err
		}
		sut = measureBaseline(hb, mix.spec, nOps, 4, 1)
		sut.inst = bigInst
		hb.Close()
		suts = append(suts, sut)

		ref := suts[0].cap.qpsPerInst // tierbase-wal reference
		declQPS, declData := 0.4*ref, 10.0
		for _, s := range suts {
			pc, sc := s.price(declQPS, declData)
			res.AddRow(mix.label, s.name, fmtF(sc), fmtF(pc), fmtF(math.Max(pc, sc)))
		}
	}
	res.AddNote("paper shape: cassandra/hbase high PC low SC; redis-aof/tierbase-wal low PC high SC; tiered wt/wb balance both; wb beats wt on 50/50, converges on 95/5")
	return res, nil
}

// traceKV replays trace entries through a kv surface.
func traceDrive(sys kvOp, entries []trace.Entry, workers int) driveResult {
	ops := make([]workload.Op, 0, len(entries))
	for _, e := range entries {
		switch e.Op {
		case trace.OpRead:
			ops = append(ops, workload.Op{Kind: workload.OpRead, Key: e.Key})
		case trace.OpWrite:
			ops = append(ops, workload.Op{Kind: workload.OpUpdate, Key: e.Key, Value: e.Val})
		}
	}
	return drive(sys, ops, workers)
}

// caseStudyMeasurements measures every fig12 system on a trace. preload
// seeds the full key population (the sampled data snapshot of §5.3).
func caseStudyMeasurements(o RunOpts, tr *trace.Trace, preload map[string][]byte, tag string) ([]costSUT, error) {
	var logical int64
	for k, v := range preload {
		logical += int64(len(k) + len(v))
	}
	expected := logical
	ds := workload.NewKV1()
	if tag == "recon" {
		ds = workload.NewKV2()
	}

	var suts []costSUT
	addTB := func(cfg TBConfig, inst instanceSpec) error {
		sys, err := BuildTierBase(cfg, filepath.Join(o.Dir, "fig12", tag+cfg.Name))
		if err != nil {
			return err
		}
		defer sys.Close()
		for k, v := range preload {
			if err := sys.Set(k, v); err != nil {
				return err
			}
		}
		sys.FlushDirty()
		if sys.db != nil {
			sys.db.Flush()
			sys.db.CompactAll()
		}
		dr := traceDrive(sys, tr.Entries, 4)
		sys.FlushDirty()
		sut := costSUT{
			name: cfg.Name, inst: inst,
			cap: capability{
				qpsPerInst:     dr.QPS,
				dramPerLogical: float64(sys.MemBytes()) / float64(logical),
				pmemPerLogical: float64(sys.PMemBytes()) / float64(logical),
				diskPerLogical: float64(sys.DiskBytes()) / float64(logical),
			},
			tiered: cfg.Persist == "wt" || cfg.Persist == "wb",
		}
		if sys.Tiered() != nil {
			sut.mr = sys.Tiered().MissRatio()
		}
		suts = append(suts, sut)
		return nil
	}
	addBase := func(name string, inst instanceSpec, dramMult float64) error {
		sys, err := baselines.Build(name, filepath.Join(o.Dir, "fig12", tag+name))
		if err != nil {
			return err
		}
		defer sys.Close()
		for k, v := range preload {
			sys.Set(k, v)
		}
		if ls, ok := sys.(*baselines.LSMStore); ok {
			ls.DB().Flush()
			ls.DB().CompactAll()
		}
		dr := traceDrive(sys, tr.Entries, 4)
		suts = append(suts, costSUT{
			name: sys.Name(), inst: inst,
			cap: capability{
				qpsPerInst:     dr.QPS,
				dramPerLogical: float64(sys.MemBytes()) * dramMult / float64(logical),
				diskPerLogical: float64(sys.DiskBytes()) / float64(logical),
			},
		})
		return nil
	}

	rtt := missRTT
	tbConfigs := []struct {
		cfg  TBConfig
		inst instanceSpec
	}{
		{TBConfig{Name: "tierbase-raw", Threads: 1}, cacheInst},
		{TBConfig{Name: "tierbase-e", Threads: 0}, cacheInst},
		{TBConfig{Name: "tierbase-pmem", Threads: 1, PMem: true, PMemLatency: pmem.DefaultLatency}, pmemInst},
		{TBConfig{Name: "tierbase-pbc", Threads: 1, Compressor: "pbc", TrainOn: ds}, cacheInst},
		{TBConfig{Name: "tierbase-wt-4X", Threads: 1, Persist: "wt", CacheRatioX: 4, ExpectedLogicalBytes: expected, RTT: rtt}, cacheInst},
		{TBConfig{Name: "tierbase-wb-4X", Threads: 1, Persist: "wb", CacheRatioX: 4, ExpectedLogicalBytes: expected, Replicas: 1, RTT: rtt}, cacheInst},
	}
	for _, tc := range tbConfigs {
		if err := addTB(tc.cfg, tc.inst); err != nil {
			return nil, err
		}
	}
	for _, b := range []struct {
		name     string
		inst     instanceSpec
		dramMult float64
	}{
		{"redis", cacheInst, 2}, // dual-replica reliability per §6.5.1
		{"memcached", bigInst, 2},
		{"dragonfly", bigInst, 2},
		{"cassandra", bigInst, 1},
		{"hbase", bigInst, 1},
	} {
		if err := addBase(b.name, b.inst, b.dramMult); err != nil {
			return nil, err
		}
	}
	return suts, nil
}

func tracePreload(tr *trace.Trace, ds workload.Dataset) map[string][]byte {
	preload := map[string][]byte{}
	i := int64(0)
	for _, e := range tr.Entries {
		if _, ok := preload[e.Key]; !ok {
			if e.Val != nil {
				preload[e.Key] = e.Val
			} else {
				preload[e.Key] = ds.Record(i)
			}
			i++
		}
	}
	return preload
}

// RunFig12 reproduces Figure 12: replayed case-study costs.
func RunFig12(o RunOpts) (*Result, error) {
	o.fill()
	res := &Result{
		ID: "fig12", Title: "Case studies (replayed traces)",
		Header: []string{"case", "system", "cost_GB(SC)", "cost_QPS(PC)", "cost", "MR"},
	}
	// Case 1: User Info Service (read-heavy 32:1, zipfian).
	ui := trace.GenUserInfo(trace.UserInfoOptions{Ops: o.n(25000)})
	uiPre := tracePreload(ui, workload.NewKV1())
	suts, err := caseStudyMeasurements(o, ui, uiPre, "ui")
	if err != nil {
		return nil, err
	}
	ref := suts[0].cap.qpsPerInst // tierbase-raw
	declQPS, declData := 1.0*ref, 20.0
	for _, s := range suts {
		pc, sc := s.price(declQPS, declData)
		res.AddRow("userinfo", s.name, fmtF(sc), fmtF(pc), fmtF(math.Max(pc, sc)), fmtF(s.mr))
	}
	// Case 2: Capital Reconciliation (1:1, temporal skew).
	rc := trace.GenReconciliation(trace.ReconciliationOptions{Ops: o.n(25000)})
	rcPre := tracePreload(rc, workload.NewKV2())
	suts2, err := caseStudyMeasurements(o, rc, rcPre, "recon")
	if err != nil {
		return nil, err
	}
	ref2 := suts2[0].cap.qpsPerInst
	declQPS2, declData2 := 0.2*ref2, 10.0
	for _, s := range suts2 {
		pc, sc := s.price(declQPS2, declData2)
		res.AddRow("reconciliation", s.name, fmtF(sc), fmtF(pc), fmtF(math.Max(pc, sc)), fmtF(s.mr))
	}
	res.AddNote("case1 shape: in-memory stores low PC / high SC; PBC halves TierBase SC (62%% cost cut vs raw); case2 shape: wt cuts PC vs cassandra, wb cuts further; tiering cuts ≥37%% vs cassandra/hbase")
	return res, nil
}

// RunFig1 reproduces Figure 1: normalized SC/PC/Cost bars for
// TierBase-Raw/PMem/PBC/wb-5X/wt-5X on the primary (User Info) scenario.
func RunFig1(o RunOpts) (*Result, error) {
	o.fill()
	res := &Result{
		ID: "fig1", Title: "Cost comparison in TierBase (normalized)",
		Header: []string{"config", "SC", "PC", "cost"},
	}
	ui := trace.GenUserInfo(trace.UserInfoOptions{Ops: o.n(20000)})
	pre := tracePreload(ui, workload.NewKV1())
	var logical int64
	for k, v := range pre {
		logical += int64(len(k) + len(v))
	}
	rtt := missRTT
	configs := []struct {
		cfg  TBConfig
		inst instanceSpec
	}{
		{TBConfig{Name: "tierbase-raw", Threads: 1}, cacheInst},
		{TBConfig{Name: "tierbase-pmem", Threads: 1, PMem: true, PMemLatency: pmem.DefaultLatency}, pmemInst},
		{TBConfig{Name: "tierbase-pbc", Threads: 1, Compressor: "pbc", TrainOn: workload.NewKV1()}, cacheInst},
		{TBConfig{Name: "tierbase-wb-5X", Threads: 1, Persist: "wb", CacheRatioX: 5, ExpectedLogicalBytes: logical, Replicas: 1, RTT: rtt}, cacheInst},
		{TBConfig{Name: "tierbase-wt-5X", Threads: 1, Persist: "wt", CacheRatioX: 5, ExpectedLogicalBytes: logical, RTT: rtt}, cacheInst},
	}
	var suts []costSUT
	for _, tc := range configs {
		sys, err := BuildTierBase(tc.cfg, filepath.Join(o.Dir, "fig1", tc.cfg.Name))
		if err != nil {
			return nil, err
		}
		for k, v := range pre {
			sys.Set(k, v)
		}
		sys.FlushDirty()
		if sys.db != nil {
			sys.db.Flush()
		}
		dr := traceDrive(sys, ui.Entries, 4)
		sys.FlushDirty()
		sut := costSUT{
			name: tc.cfg.Name, inst: tc.inst,
			cap: capability{
				qpsPerInst:     dr.QPS,
				dramPerLogical: float64(sys.MemBytes()) / float64(logical),
				pmemPerLogical: float64(sys.PMemBytes()) / float64(logical),
				diskPerLogical: float64(sys.DiskBytes()) / float64(logical),
			},
			tiered: tc.cfg.Persist != "",
		}
		sys.Close()
		suts = append(suts, sut)
	}
	declQPS, declData := 1.0*suts[0].cap.qpsPerInst, 20.0
	type row struct{ sc, pc, cost float64 }
	rows := make([]row, len(suts))
	var maxCost float64
	for i, s := range suts {
		pc, sc := s.price(declQPS, declData)
		rows[i] = row{sc: sc, pc: pc, cost: math.Max(pc, sc)}
		maxCost = math.Max(maxCost, math.Max(pc, sc))
	}
	for i, s := range suts {
		res.AddRow(s.name,
			fmtF(rows[i].sc/maxCost), fmtF(rows[i].pc/maxCost), fmtF(rows[i].cost/maxCost))
	}
	res.AddNote("normalized to the most expensive configuration; paper shape: raw highest (SC-bound); PBC cuts total ~62%%; wb/wt cut SC at higher PC")
	return res, nil
}

// RunFig13a reproduces Figure 13(a): compression-level trade-offs on the
// case-1 workload (Zstd-analog levels with and without dictionary, PBC,
// Raw).
func RunFig13a(o RunOpts) (*Result, error) {
	o.fill()
	nRecords := int64(o.n(3000))
	nOps := o.n(10000)
	ds := workload.NewKV1()
	spec := workload.WorkloadB(nRecords, ds)
	res := &Result{
		ID: "fig13a", Title: "Compression-level space-performance trade-off",
		Header: []string{"config", "SpaceCost", "PerformanceCost", "cost"},
	}
	configs := []TBConfig{
		{Name: "raw", Threads: 1},
		{Name: "zstd-l1", Threads: 1, Compressor: "zstd-b", CompressLevel: 1, TrainOn: ds},
		{Name: "zstd-l6", Threads: 1, Compressor: "zstd-b", CompressLevel: 6, TrainOn: ds},
		{Name: "zstd-l9", Threads: 1, Compressor: "zstd-b", CompressLevel: 9, TrainOn: ds},
		{Name: "zstd-dict-l1", Threads: 1, Compressor: "zstd-d", CompressLevel: 1, TrainOn: ds},
		{Name: "zstd-dict-l6", Threads: 1, Compressor: "zstd-d", CompressLevel: 6, TrainOn: ds},
		{Name: "zstd-dict-l9", Threads: 1, Compressor: "zstd-d", CompressLevel: 9, TrainOn: ds},
		{Name: "pbc", Threads: 1, Compressor: "pbc", TrainOn: ds},
	}
	var suts []costSUT
	for _, cfg := range configs {
		sut, err := measureTB(cfg, "", spec, nOps, 4)
		if err != nil {
			return nil, err
		}
		sut.inst = cacheInst
		suts = append(suts, sut)
	}
	declQPS, declData := 1.0*suts[0].cap.qpsPerInst, 20.0
	for _, s := range suts {
		pc, sc := s.price(declQPS, declData)
		res.AddRow(s.name, fmtF(sc), fmtF(pc), fmtF(math.Max(pc, sc)))
	}
	res.AddNote("paper shape: higher levels trade PC for SC with diminishing ratio returns; pre-trained dict dominates same-level no-dict; practical pick = dict level 1")
	return res, nil
}

// RunFig13b reproduces Figure 13(b): cache-ratio trade-off for write-back
// tiering (in-mem, wb-2X..wb-5X), and validates the Theorem 5.1 optimum
// against the trace's empirical miss-ratio curve.
func RunFig13b(o RunOpts) (*Result, error) {
	o.fill()
	nOps := o.n(20000)
	ui := trace.GenUserInfo(trace.UserInfoOptions{Ops: nOps})
	pre := tracePreload(ui, workload.NewKV1())
	var logical int64
	for k, v := range pre {
		logical += int64(len(k) + len(v))
	}
	res := &Result{
		ID: "fig13b", Title: "Cache-ratio space-performance trade-off",
		Header: []string{"config", "SpaceCost", "PerformanceCost", "cost", "MR"},
	}
	rtt := missRTT
	configs := []TBConfig{
		{Name: "in-mem", Threads: 1},
		{Name: "wb-2X", Threads: 1, Persist: "wb", CacheRatioX: 2, ExpectedLogicalBytes: logical, Replicas: 1, RTT: rtt},
		{Name: "wb-3X", Threads: 1, Persist: "wb", CacheRatioX: 3, ExpectedLogicalBytes: logical, Replicas: 1, RTT: rtt},
		{Name: "wb-4X", Threads: 1, Persist: "wb", CacheRatioX: 4, ExpectedLogicalBytes: logical, Replicas: 1, RTT: rtt},
		{Name: "wb-5X", Threads: 1, Persist: "wb", CacheRatioX: 5, ExpectedLogicalBytes: logical, Replicas: 1, RTT: rtt},
	}
	var suts []costSUT
	for _, cfg := range configs {
		sys, err := BuildTierBase(cfg, filepath.Join(o.Dir, "fig13b", cfg.Name))
		if err != nil {
			return nil, err
		}
		for k, v := range pre {
			sys.Set(k, v)
		}
		sys.FlushDirty()
		if sys.db != nil {
			sys.db.Flush()
		}
		dr := traceDrive(sys, ui.Entries, 4)
		sys.FlushDirty()
		sut := costSUT{
			name: cfg.Name, inst: cacheInst,
			cap: capability{
				qpsPerInst:     dr.QPS,
				dramPerLogical: float64(sys.MemBytes()) / float64(logical),
				diskPerLogical: float64(sys.DiskBytes()) / float64(logical),
			},
			tiered: cfg.Persist != "",
		}
		if sys.Tiered() != nil {
			sut.mr = sys.Tiered().MissRatio()
		}
		sys.Close()
		suts = append(suts, sut)
	}
	declQPS, declData := 1.0*suts[0].cap.qpsPerInst, 20.0
	for _, s := range suts {
		pc, sc := s.price(declQPS, declData)
		res.AddRow(s.name, fmtF(sc), fmtF(pc), fmtF(math.Max(pc, sc)), fmtF(s.mr))
	}
	// Theorem 5.1 validation from the empirical MRC.
	mrc := core.BuildMRC(ui.Keys()).Curve(true)
	in := core.TieredInputs{
		PCCache: 1, PCMiss: 2,
		SCCache: declData * suts[0].cap.dramPerLogical / (cacheInst.dramGB * usableFrac),
	}
	crStar, mrStar, _ := core.OptimalCacheRatio(in, mrc)
	res.AddNote("Theorem 5.1 on empirical MRC: CR*=%.3f (≈1/%.1fX) with MR*=%.3f", crStar, 1/math.Max(crStar, 1e-9), mrStar)
	res.AddNote("paper shape: higher X lowers SC, raises PC and MR; optimum near wb-5X for the read-heavy skewed trace")
	return res, nil
}

// RunTable3 reproduces Table 3: break-even intervals between fast and slow
// TierBase configurations, plus the recommendation for the observed
// User-Info access interval.
func RunTable3(o RunOpts) (*Result, error) {
	o.fill()
	nRecords := int64(o.n(3000))
	nOps := o.n(10000)
	ds := workload.NewKV1()
	spec := workload.WorkloadB(nRecords, ds)
	res := &Result{
		ID: "tab3", Title: "Break-even intervals between configurations",
		Header: []string{"fast", "slow", "interval_s"},
	}
	configs := []struct {
		cfg  TBConfig
		inst instanceSpec
	}{
		{TBConfig{Name: "raw", Threads: 1}, cacheInst},
		{TBConfig{Name: "pmem", Threads: 1, PMem: true, PMemLatency: pmem.DefaultLatency}, pmemInst},
		{TBConfig{Name: "pbc", Threads: 1, Compressor: "pbc", TrainOn: ds}, cacheInst},
	}
	var measured []core.Measured
	for _, tc := range configs {
		sut, err := measureTB(tc.cfg, "", spec, nOps, 4)
		if err != nil {
			return nil, err
		}
		maxSpace := 1.0 / spaceInstances(sut.cap, tc.inst, 1.0) // GB per instance
		measured = append(measured, core.Measured{
			Config:     tc.cfg.Name,
			MaxPerfQPS: sut.cap.qpsPerInst / tc.inst.cost,
			MaxSpaceGB: maxSpace / tc.inst.cost,
		})
	}
	recSize := float64(ds.AvgRecordSize())
	table := core.BreakEvenTable(core.StandardContainer, measured, recSize)
	for _, e := range table {
		res.AddRow(e.Fast, e.Slow, fmtF(e.IntervalS))
	}
	// Observed access interval from the case-1 trace drives the choice.
	ui := trace.GenUserInfo(trace.UserInfoOptions{Ops: o.n(20000)})
	st := ui.Summarize()
	best, err := core.RecommendStorage(core.StandardContainer, measured, recSize, st.MeanAccessIntervalS)
	if err != nil {
		return nil, err
	}
	res.AddNote("observed mean access interval: %.0f s (trace ticks as seconds); recommended config: %s", st.MeanAccessIntervalS, best.Config)
	res.AddNote("paper shape: raw→pmem < raw→pbc < pmem→pbc; long intervals favor compression")
	return res, nil
}
