// Package bench is the experiment harness: one driver per table/figure of
// the paper's evaluation (§6), each regenerating the same rows/series the
// paper reports, using the cost-optimization framework of §5.3 (load a
// snapshot, replay operations, measure MaxPerf/MaxSpace, compute costs).
//
// Scaling note (see EXPERIMENTS.md): the paper's testbed runs Redis-class
// systems at ~100k QPS/core against 10 GB datasets. This harness runs
// in-process Go engines that are substantially faster per core, so each
// cost experiment declares its workload *relative to a measured reference*
// (e.g. fig10's 80k-QPS-on-100k-capable becomes 0.8 × MaxPerf of the
// single-thread reference). Relative positions — who wins, by what factor,
// where lines cross — are the reproduction target, not absolute numbers.
package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"tierbase/internal/metrics"
	"tierbase/internal/workload"
)

// RunOpts tunes an experiment run.
type RunOpts struct {
	// Scale multiplies operation/record counts (default 1.0). Benches use
	// small defaults so the full suite finishes on a laptop; raise for
	// tighter confidence.
	Scale float64
	// Dir is the scratch directory for persistent configurations.
	Dir string
}

func (o *RunOpts) fill() {
	if o.Scale <= 0 {
		o.Scale = 1
	}
}

func (o RunOpts) n(base int) int {
	n := int(float64(base) * o.Scale)
	if n < 10 {
		n = 10
	}
	return n
}

// Result is one experiment's output table.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// AddNote appends a free-text note.
func (r *Result) AddNote(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Experiment is one registered driver.
type Experiment struct {
	ID    string
	Title string
	Run   func(o RunOpts) (*Result, error)
}

// Registry returns all experiments in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"fig1", "Cost comparison in TierBase (normalized SC/PC/Cost)", RunFig1},
		{"fig7", "Caching systems: throughput and p99, single vs multi-thread", RunFig7},
		{"fig8", "Persistence mechanisms: WAL, WAL-PMem, write-back, write-through", RunFig8},
		{"tab2", "Compression techniques: ratio and SET/GET throughput", RunTable2},
		{"fig9", "Elastic threading under workload burst (throughput timeline)", RunFig9},
		{"fig10", "Cost of caching systems (50/50 and 95/5 mixes)", RunFig10},
		{"fig11", "Cost of databases with persistence (50/50 and 95/5 mixes)", RunFig11},
		{"fig12", "Case studies: User Info Service and Capital Reconciliation", RunFig12},
		{"fig13a", "Compression-level space-performance trade-off", RunFig13a},
		{"fig13b", "Cache-ratio space-performance trade-off (write-back NX)", RunFig13b},
		{"tab3", "Break-even intervals between configurations", RunTable3},
		{"shardscale", "Lock-striped engine scaling and batch (MGET/MSET) fast path", RunShardScale},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- measurement core ---

// kvOp is the minimal op surface every measured system exposes.
type kvOp interface {
	Set(key string, val []byte) error
	Get(key string) ([]byte, error)
}

// driveResult is one throughput measurement.
type driveResult struct {
	QPS    float64
	P99    time.Duration
	Mean   time.Duration
	Errors int
}

// drive replays ops against sys with the given concurrency, measuring
// throughput and latency. Missing keys on Get are not errors (cold reads).
func drive(sys kvOp, ops []workload.Op, workers int) driveResult {
	if workers < 1 {
		workers = 1
	}
	hist := metrics.NewHistogram()
	var errs int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	chunk := (len(ops) + workers - 1) / workers
	start := time.Now()
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(ops) {
			hi = len(ops)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(ops []workload.Op) {
			defer wg.Done()
			local := 0
			for _, op := range ops {
				t0 := time.Now()
				var err error
				switch op.Kind {
				case workload.OpRead:
					_, err = sys.Get(op.Key)
					if err != nil && isNotFound(err) {
						err = nil
					}
				default:
					err = sys.Set(op.Key, op.Value)
				}
				hist.RecordDuration(time.Since(t0))
				if err != nil {
					local++
				}
			}
			mu.Lock()
			errs += int64(local)
			mu.Unlock()
		}(ops[lo:hi])
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	qps := float64(len(ops)) / elapsed
	return driveResult{
		QPS:    qps,
		P99:    time.Duration(hist.P99()),
		Mean:   time.Duration(int64(hist.Mean())),
		Errors: int(errs),
	}
}

func isNotFound(err error) bool {
	// The harness spans several packages' not-found errors; string match
	// keeps it dependency-light here.
	s := err.Error()
	return strings.Contains(s, "not found") || strings.Contains(s, "nil reply")
}

// loadAll inserts the load-phase records.
func loadAll(sys kvOp, spec workload.Spec) error {
	for _, op := range spec.LoadOps() {
		if err := sys.Set(op.Key, op.Value); err != nil {
			return err
		}
	}
	return nil
}

// fmtQPS renders throughput in kqps.
func fmtQPS(qps float64) string { return fmt.Sprintf("%.1f", qps/1000) }

// fmtDur renders a latency value in microseconds.
func fmtDur(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1000) }

// fmtF renders a float with 3 decimals.
func fmtF(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.3f", v)
}

// fmtRatio renders a compression ratio with 4 decimals.
func fmtRatio(v float64) string { return fmt.Sprintf("%.4f", v) }

// sortRowsBy sorts result rows by a numeric column.
func sortRowsBy(rows [][]string, col int) {
	sort.SliceStable(rows, func(i, j int) bool {
		var a, b float64
		fmt.Sscanf(rows[i][col], "%f", &a)
		fmt.Sscanf(rows[j][col], "%f", &b)
		return a < b
	})
}
