package bench

import (
	"fmt"
	"path/filepath"
	"time"

	"tierbase/internal/cache"
	"tierbase/internal/compress"
	"tierbase/internal/elastic"
	"tierbase/internal/engine"
	"tierbase/internal/lsm"
	"tierbase/internal/pmem"
	"tierbase/internal/wal"
	"tierbase/internal/workload"
)

// TBConfig selects a TierBase configuration — the knobs the paper's
// experiments sweep (§6.4.1 naming: -s/-e/-m threading, -PMem, -Zstd/-PBC,
// -WAL/-WAL-PMem, -wt-NX/-wb-NX).
type TBConfig struct {
	Name string
	// Threads: 1 = single (-s), 0 = elastic (-e), n>1 = fixed multi (-m).
	Threads int
	// Compressor: "", "pbc", "zstd-d" (deflate-dict), "zstd-b" (deflate).
	Compressor string
	// CompressLevel for deflate variants (0 = default).
	CompressLevel int
	// TrainOn pre-trains the compressor (required for pbc/zstd-d).
	TrainOn workload.Dataset
	// PMem enables the DRAM-extension arena for values.
	PMem bool
	// PMemLatency injects access costs (zero = fast simulation).
	PMemLatency pmem.Latency
	// Persist: "" (pure cache), "wal", "wal-pmem", "wt", "wb".
	Persist string
	// CacheRatioX for wt/wb: data-to-cache ratio (e.g. 5 = cache holds
	// 1/X of the data). 0 = unbounded cache.
	CacheRatioX int
	// ExpectedLogicalBytes sizes the cache for CacheRatioX.
	ExpectedLogicalBytes int64
	// Replicas adds cache-tier replicas (dual-replica reliability).
	Replicas int
	// RTT models the disaggregation hop to the storage tier.
	RTT time.Duration
	// OpCost injects per-operation request-processing CPU cost (command
	// parsing, dispatch, response encoding at production scale). fig9
	// uses ~10µs to place single-thread capacity near the paper's
	// ~100 kQPS/core operating point.
	OpCost time.Duration
}

// spin busy-waits (models CPU work, unlike time.Sleep which yields).
func spin(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

// TBSystem is a fully wired TierBase instance for the harness. It
// implements the same surface as baselines.System.
type TBSystem struct {
	name     string
	pool     *elastic.Pool
	eng      *engine.Engine
	replicas []*engine.Engine
	tiered   *cache.Tiered
	remote   *cache.Remote
	db       *lsm.DB
	wlog     wal.Appender
	arena    *pmem.Arena
	pmemDev  *pmem.Device
	comp     compress.Compressor
	opCost   time.Duration
}

// BuildTierBase wires a TierBase configuration. dir is used by persistent
// modes for the LSM store / WAL files.
func BuildTierBase(cfg TBConfig, dir string) (*TBSystem, error) {
	s := &TBSystem{name: cfg.Name, opCost: cfg.OpCost}
	if s.name == "" {
		s.name = "tierbase"
	}

	// Compression.
	engOpts := engine.Options{}
	if cfg.Compressor != "" {
		c, err := compress.ByName(cfg.Compressor, cfg.CompressLevel)
		if err != nil {
			return nil, err
		}
		if cfg.TrainOn != nil {
			if err := c.Train(workload.Sample(cfg.TrainOn, 500)); err != nil {
				return nil, err
			}
		}
		engOpts.Compressor = c
		engOpts.CompressMin = 16
		s.comp = c
	}

	// PMem arena.
	if cfg.PMem {
		s.pmemDev = pmem.OpenVolatile(256<<20, cfg.PMemLatency)
		s.arena = pmem.NewArena(s.pmemDev, 0)
		engOpts.Arena = s.arena
		engOpts.PMemMin = 64
	}

	s.eng = engine.New(engOpts)
	for i := 0; i < cfg.Replicas; i++ {
		s.replicas = append(s.replicas, engine.New(engOpts))
	}

	// Threading.
	poolOpts := elastic.PoolOptions{MaxWorkers: 4}
	switch {
	case cfg.Threads == 1:
		poolOpts.Fixed = 1
	case cfg.Threads > 1:
		poolOpts.Fixed = cfg.Threads
	default:
		poolOpts.EvalInterval = 5 * time.Millisecond
		// Clients submit synchronously, so backlog equals the number of
		// blocked connections; a handful of waiters already signals that
		// the single worker is saturated.
		poolOpts.BoostQueueDepth = 4
		poolOpts.CooldownTicks = 40
	}
	s.pool = elastic.NewPool(poolOpts)

	// Persistence.
	switch cfg.Persist {
	case "":
		tr, err := cache.New(cache.Options{
			Policy: cache.CacheOnly, Engine: s.eng, Replicas: s.replicas,
		})
		if err != nil {
			return nil, err
		}
		s.tiered = tr
	case "wal":
		log, err := wal.Open(wal.Options{Dir: filepath.Join(dir, "wal"), Policy: wal.SyncInterval})
		if err != nil {
			return nil, err
		}
		s.wlog = log
		tr, err := cache.New(cache.Options{
			Policy: cache.CacheOnly, Engine: s.eng, Replicas: s.replicas,
		})
		if err != nil {
			return nil, err
		}
		s.tiered = tr
	case "wal-pmem":
		dev := pmem.OpenVolatile(8<<20, cfg.PMemLatency)
		ring, err := pmem.NewRing(dev)
		if err != nil {
			return nil, err
		}
		back, err := wal.Open(wal.Options{Dir: filepath.Join(dir, "wal"), Policy: wal.SyncNever})
		if err != nil {
			return nil, err
		}
		s.wlog = wal.NewPMemLog(ring, back)
		tr, err := cache.New(cache.Options{
			Policy: cache.CacheOnly, Engine: s.eng, Replicas: s.replicas,
		})
		if err != nil {
			return nil, err
		}
		s.tiered = tr
	case "wt", "wb":
		db, err := lsm.Open(lsm.Options{
			Dir: filepath.Join(dir, "lsm"), MemtableBytes: 4 << 20,
			WALSyncPolicy: wal.SyncInterval,
		})
		if err != nil {
			return nil, err
		}
		s.db = db
		s.remote = cache.NewRemote(cache.NewLSMStorage(db), cfg.RTT)
		var capBytes int64
		if cfg.CacheRatioX > 0 && cfg.ExpectedLogicalBytes > 0 {
			// Physical cache budget for 1/X of the data, with engine
			// overhead headroom.
			capBytes = int64(float64(cfg.ExpectedLogicalBytes) / float64(cfg.CacheRatioX) * 1.6)
		}
		policy := cache.WriteThrough
		if cfg.Persist == "wb" {
			policy = cache.WriteBack
		}
		tr, err := cache.New(cache.Options{
			Policy: policy, Engine: s.eng, Storage: s.remote,
			Replicas: s.replicas, CacheCapacityBytes: capBytes,
			FlushBatch: 64, FlushInterval: 20 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		s.tiered = tr
	default:
		return nil, fmt.Errorf("bench: unknown persist mode %q", cfg.Persist)
	}
	return s, nil
}

// Name implements the system surface.
func (s *TBSystem) Name() string { return s.name }

// Set routes a write through the threading pool and persistence path.
// Tiered configurations issue the storage-tier round trip off the event
// loop: the paper's write-through design keeps the loop responsive via
// the temporary update buffer while the storage write is in flight, so
// only the in-memory command cost occupies a worker.
func (s *TBSystem) Set(key string, val []byte) error {
	var err error
	perr := s.pool.SubmitWait(func() {
		spin(s.opCost)
		if s.wlog != nil {
			rec := make([]byte, 0, len(key)+len(val)+8)
			rec = append(rec, 'S')
			rec = append(rec, byte(len(key)), byte(len(key)>>8))
			rec = append(rec, key...)
			rec = append(rec, val...)
			if err = s.wlog.Append(rec); err != nil {
				return
			}
		}
		if s.remote == nil {
			err = s.tiered.Set(key, val)
		}
	})
	if perr != nil {
		return perr
	}
	if err == nil && s.remote != nil {
		err = s.tiered.Set(key, val)
	}
	return err
}

// Get routes a read through the threading pool; storage-tier misses
// resolve off the loop (see Set).
func (s *TBSystem) Get(key string) ([]byte, error) {
	var v []byte
	var err error
	perr := s.pool.SubmitWait(func() {
		spin(s.opCost)
		if s.remote == nil {
			v, err = s.tiered.Get(key)
		}
	})
	if perr != nil {
		return nil, perr
	}
	if s.remote != nil {
		v, err = s.tiered.Get(key)
	}
	return v, err
}

// Delete routes a delete through the threading pool.
func (s *TBSystem) Delete(key string) error {
	var err error
	perr := s.pool.SubmitWait(func() {
		spin(s.opCost)
		if s.wlog != nil {
			rec := append([]byte{'D'}, key...)
			if err = s.wlog.Append(rec); err != nil {
				return
			}
		}
		if s.remote == nil {
			err = s.tiered.Delete(key)
		}
	})
	if perr != nil {
		return perr
	}
	if err == nil && s.remote != nil {
		err = s.tiered.Delete(key)
	}
	return err
}

// MemBytes sums DRAM across primary and replicas.
func (s *TBSystem) MemBytes() int64 {
	total := s.eng.MemUsed()
	for _, r := range s.replicas {
		total += r.MemUsed()
	}
	return total
}

// PMemBytes reports persistent-memory bytes in use.
func (s *TBSystem) PMemBytes() int64 {
	if s.arena == nil {
		return 0
	}
	n := s.arena.Used()
	return n * int64(1+len(s.replicas))
}

// DiskBytes reports storage-tier bytes.
func (s *TBSystem) DiskBytes() int64 {
	if s.db != nil {
		return s.db.Stats().DiskBytes
	}
	if s.wlog != nil {
		// AOF-style: post-rewrite log ≈ dataset size.
		return s.eng.MemUsed()
	}
	return 0
}

// Tiered exposes the tiered store (MR stats).
func (s *TBSystem) Tiered() *cache.Tiered { return s.tiered }

// Pool exposes the elastic pool (mode observation).
func (s *TBSystem) Pool() *elastic.Pool { return s.pool }

// Remote exposes storage-tier RPC stats (nil for cache-only).
func (s *TBSystem) Remote() *cache.Remote { return s.remote }

// FlushDirty drains write-back dirty data (checkpoint for measurement).
func (s *TBSystem) FlushDirty() error {
	if s.tiered != nil {
		return s.tiered.FlushDirty()
	}
	return nil
}

// Close releases all resources.
func (s *TBSystem) Close() error {
	s.pool.Stop()
	var first error
	if s.tiered != nil {
		if err := s.tiered.Close(); err != nil {
			first = err
		}
	}
	if s.wlog != nil {
		if err := s.wlog.Close(); err != nil && first == nil {
			first = err
		}
	}
	if s.db != nil {
		if err := s.db.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// measureOverhead loads n records of ds into an engine configured like
// cfg and returns physical-DRAM-per-logical-byte and PMem-per-logical
// ratios. This feeds MaxSpace estimation without loading full datasets.
func measureOverhead(cfg TBConfig, ds workload.Dataset, n int) (dramRatio, pmemRatio float64, err error) {
	probe := cfg
	probe.Persist = ""
	probe.Replicas = 0
	probe.Threads = 1
	probe.Name = "probe"
	probe.PMemLatency = pmem.Latency{} // capacity probing needs no latency
	sys, err := BuildTierBase(probe, "")
	if err != nil {
		return 0, 0, err
	}
	defer sys.Close()
	var logical int64
	for i := 0; i < n; i++ {
		rec := ds.Record(int64(i))
		key := fmt.Sprintf("probe%09d", i)
		logical += int64(len(rec)) + int64(len(key))
		if err := sys.Set(key, rec); err != nil {
			return 0, 0, err
		}
	}
	if logical == 0 {
		return 1, 0, nil
	}
	return float64(sys.MemBytes()) / float64(logical),
		float64(sys.PMemBytes()) / float64(logical), nil
}
