package bench

import (
	"strconv"
	"strings"
	"testing"

	"tierbase/internal/workload"
)

// tiny returns options that keep experiment runtime in CI range.
func tiny(t *testing.T) RunOpts {
	t.Helper()
	return RunOpts{Scale: 0.08, Dir: t.TempDir()}
}

func cell(r *Result, rowMatch func([]string) bool, col int) (float64, bool) {
	for _, row := range r.Rows {
		if rowMatch(row) {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				return 0, false
			}
			return v, true
		}
	}
	return 0, false
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	want := []string{"fig1", "fig7", "fig8", "tab2", "fig9", "fig10", "fig11", "fig12", "fig13a", "fig13b", "tab3", "shardscale"}
	if len(reg) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(reg), len(want))
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Fatalf("missing experiment %s", id)
		}
	}
	if _, ok := ByID("fig99"); ok {
		t.Fatal("phantom experiment")
	}
}

func TestResultString(t *testing.T) {
	r := &Result{ID: "x", Title: "t", Header: []string{"a", "b"}}
	r.AddRow("1", "2")
	r.AddNote("note %d", 7)
	s := r.String()
	if !strings.Contains(s, "x") || !strings.Contains(s, "note 7") {
		t.Fatalf("render: %s", s)
	}
}

func TestDriveCountsErrors(t *testing.T) {
	sys := failingKV{}
	ops := []workload.Op{{Kind: workload.OpUpdate, Key: "k", Value: []byte("v")}}
	dr := drive(sys, ops, 1)
	if dr.Errors != 1 {
		t.Fatalf("errors %d", dr.Errors)
	}
}

type failingKV struct{}

func (failingKV) Set(string, []byte) error   { return strErr("boom") }
func (failingKV) Get(string) ([]byte, error) { return nil, strErr("key not found") }

type strErr string

func (e strErr) Error() string { return string(e) }

func TestMeasureOverheadSane(t *testing.T) {
	dram, pmemR, err := measureOverhead(TBConfig{}, workload.NewKV1(), 200)
	if err != nil {
		t.Fatal(err)
	}
	if dram < 1.0 || dram > 3.0 {
		t.Fatalf("raw dram ratio %.2f out of plausible range", dram)
	}
	if pmemR != 0 {
		t.Fatalf("raw config should use no pmem: %f", pmemR)
	}
	dramC, _, err := measureOverhead(TBConfig{Compressor: "pbc", TrainOn: workload.NewKV1()}, workload.NewKV1(), 200)
	if err != nil {
		t.Fatal(err)
	}
	if dramC >= dram {
		t.Fatalf("pbc overhead %.2f should be below raw %.2f", dramC, dram)
	}
}

func TestFig7Shapes(t *testing.T) {
	res, err := RunFig7(tiny(t))
	if err != nil {
		t.Fatal(err)
	}
	// 6 systems × 3 phases.
	if len(res.Rows) != 18 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		q, _ := strconv.ParseFloat(row[3], 64)
		if q <= 0 {
			t.Fatalf("non-positive throughput: %v", row)
		}
	}
}

func TestFig8Shapes(t *testing.T) {
	// This shape needs enough write volume for write-back's batching to
	// amortize its bookkeeping, and it measures wall-clock throughput, so
	// retry under CPU contention (e.g. parallel package benches).
	var wb, wt float64
	for attempt := 0; attempt < 3; attempt++ {
		res, err := RunFig8(RunOpts{Scale: 0.3, Dir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 12 {
			t.Fatalf("rows %d", len(res.Rows))
		}
		// Core paper claim: write-back beats write-through on the load phase.
		var ok1, ok2 bool
		wb, ok1 = cell(res, func(r []string) bool { return r[0] == "write-back" && r[1] == "load" }, 2)
		wt, ok2 = cell(res, func(r []string) bool { return r[0] == "write-through" && r[1] == "load" }, 2)
		if !ok1 || !ok2 {
			t.Fatal("missing rows")
		}
		if wb > wt {
			return
		}
		t.Logf("attempt %d: wb %.1f vs wt %.1f — retrying", attempt, wb, wt)
	}
	t.Fatalf("write-back (%.1f) should beat write-through (%.1f) on load", wb, wt)
}

func TestTable2Shapes(t *testing.T) {
	res, err := RunTable2(RunOpts{Scale: 0.2, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 { // 3 datasets × 4 methods
		t.Fatalf("rows %d", len(res.Rows))
	}
	for _, dsName := range []string{"kv1", "kv2"} {
		pbc, _ := cell(res, func(r []string) bool { return r[0] == dsName && r[1] == "pbc" }, 2)
		dict, _ := cell(res, func(r []string) bool { return r[0] == dsName && r[1] == "zstd-d" }, 2)
		base, _ := cell(res, func(r []string) bool { return r[0] == dsName && r[1] == "zstd-b" }, 2)
		if !(pbc < dict && dict < base) {
			t.Fatalf("%s ratio ordering violated: pbc=%.4f dict=%.4f base=%.4f", dsName, pbc, dict, base)
		}
		// GET: PBC must beat the deflate variants (near-raw decode speed).
		gPBC, _ := cell(res, func(r []string) bool { return r[0] == dsName && r[1] == "pbc" }, 5)
		gDict, _ := cell(res, func(r []string) bool { return r[0] == dsName && r[1] == "zstd-d" }, 5)
		if gPBC <= gDict {
			t.Fatalf("%s GET: pbc (%.1f) should beat zstd-d (%.1f)", dsName, gPBC, gDict)
		}
	}
}

func TestFig10Shapes(t *testing.T) {
	res, err := RunFig10(tiny(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 16 { // 8 systems × 2 mixes
		t.Fatalf("rows %d", len(res.Rows))
	}
	// Compression must cut TierBase's SC.
	for _, mix := range []string{"50/50", "95/5"} {
		raw, _ := cell(res, func(r []string) bool { return r[0] == mix && r[1] == "tierbase-s" }, 2)
		pbc, _ := cell(res, func(r []string) bool { return r[0] == mix && r[1] == "tierbase-pbc" }, 2)
		pm, _ := cell(res, func(r []string) bool { return r[0] == mix && r[1] == "tierbase-pmem" }, 2)
		if pbc >= raw {
			t.Fatalf("%s: pbc SC %.3f should be below raw %.3f", mix, pbc, raw)
		}
		if pm >= raw {
			t.Fatalf("%s: pmem SC %.3f should be below raw %.3f", mix, pm, raw)
		}
	}
}

func TestFig11Shapes(t *testing.T) {
	res, err := RunFig11(tiny(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 14 { // 7 systems × 2 mixes
		t.Fatalf("rows %d", len(res.Rows))
	}
	// Cassandra/HBase: SC must be far below redis-aof's (disk vs DRAM).
	cassSC, _ := cell(res, func(r []string) bool { return r[0] == "50/50" && r[1] == "cassandra" }, 2)
	redisSC, _ := cell(res, func(r []string) bool { return r[0] == "50/50" && r[1] == "redis-aof" }, 2)
	if cassSC >= redisSC {
		t.Fatalf("cassandra SC %.3f should be below redis-aof %.3f", cassSC, redisSC)
	}
}

func TestFig12Shapes(t *testing.T) {
	res, err := RunFig12(tiny(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 22 { // 11 systems × 2 cases
		t.Fatalf("rows %d", len(res.Rows))
	}
	// Case 1: PBC must cut total cost vs raw (the 62% headline, direction only).
	raw, _ := cell(res, func(r []string) bool { return r[0] == "userinfo" && r[1] == "tierbase-raw" }, 4)
	pbc, _ := cell(res, func(r []string) bool { return r[0] == "userinfo" && r[1] == "tierbase-pbc" }, 4)
	if pbc >= raw {
		t.Fatalf("userinfo: pbc cost %.3f should be below raw %.3f", pbc, raw)
	}
	// Tiered configs must report a miss ratio.
	mr, ok := cell(res, func(r []string) bool { return r[0] == "userinfo" && r[1] == "tierbase-wt-4X" }, 5)
	if !ok || mr <= 0 || mr >= 1 {
		t.Fatalf("wt-4X MR %.3f", mr)
	}
}

func TestFig1Normalized(t *testing.T) {
	res, err := RunFig1(tiny(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	maxCost := 0.0
	for _, row := range res.Rows {
		c, _ := strconv.ParseFloat(row[3], 64)
		if c < 0 || c > 1.0001 {
			t.Fatalf("cost not normalized: %v", row)
		}
		if c > maxCost {
			maxCost = c
		}
	}
	if maxCost < 0.999 {
		t.Fatalf("max normalized cost %.3f != 1", maxCost)
	}
}

func TestFig13aShapes(t *testing.T) {
	res, err := RunFig13a(tiny(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	// Dictionary variant must dominate no-dict at the same level on SC.
	d1, _ := cell(res, func(r []string) bool { return r[0] == "zstd-dict-l6" }, 1)
	b1, _ := cell(res, func(r []string) bool { return r[0] == "zstd-l6" }, 1)
	if d1 >= b1 {
		t.Fatalf("dict SC %.3f should beat no-dict %.3f", d1, b1)
	}
}

func TestFig13bShapes(t *testing.T) {
	res, err := RunFig13b(tiny(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	// Higher X => lower SC (less cache) and higher MR.
	sc2, _ := cell(res, func(r []string) bool { return r[0] == "wb-2X" }, 1)
	sc5, _ := cell(res, func(r []string) bool { return r[0] == "wb-5X" }, 1)
	if sc5 >= sc2 {
		t.Fatalf("wb-5X SC %.3f should be below wb-2X %.3f", sc5, sc2)
	}
	mr2, _ := cell(res, func(r []string) bool { return r[0] == "wb-2X" }, 4)
	mr5, _ := cell(res, func(r []string) bool { return r[0] == "wb-5X" }, 4)
	if mr5 < mr2 {
		t.Fatalf("MR should not fall with smaller cache: 2X=%.3f 5X=%.3f", mr2, mr5)
	}
}

func TestTable3Shapes(t *testing.T) {
	res, err := RunTable3(tiny(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		v, _ := strconv.ParseFloat(row[2], 64)
		if v <= 0 {
			t.Fatalf("non-positive interval: %v", row)
		}
	}
	if len(res.Notes) == 0 || !strings.Contains(res.Notes[0], "recommended config") {
		t.Fatalf("missing recommendation note: %v", res.Notes)
	}
}

func TestFig9Timeline(t *testing.T) {
	if testing.Short() {
		t.Skip("timeline bench is wall-clock bound")
	}
	res, err := RunFig9(RunOpts{Scale: 0.05, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 10 {
		t.Fatalf("timeline too short: %d windows", len(res.Rows))
	}
	// During the burst, elastic throughput must exceed its low-phase rate.
	var lowE, burstE float64
	var lowN, burstN int
	for _, row := range res.Rows {
		tms, _ := strconv.Atoi(row[0])
		v, _ := strconv.ParseFloat(row[2], 64)
		if tms <= 1500 {
			lowE += v
			lowN++
		} else if tms <= 4500 {
			burstE += v
			burstN++
		}
	}
	if lowN == 0 || burstN == 0 {
		t.Fatal("phases missing")
	}
	if burstE/float64(burstN) <= lowE/float64(lowN) {
		t.Fatalf("elastic burst throughput (%.1f) should exceed low phase (%.1f)",
			burstE/float64(burstN), lowE/float64(lowN))
	}
}
