package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"tierbase/internal/cache"
	"tierbase/internal/engine"
	"tierbase/internal/workload"
)

// RunShardScale measures the two halves of the lock-striping refactor
// (beyond-paper experiment; same contention F2/Anna target in distributed
// KV stores):
//
//  1. Engine scaling: a parallel mixed workload against a 1-stripe engine
//     (the old single-mutex design) vs the striped default, at increasing
//     driver concurrency.
//  2. Batch fast path: per-key GET/SET loops vs MGET/MSET batches, both
//     on the bare engine (one stripe lock per shard instead of per key)
//     and through the tiered store against remote storage (one storage
//     round trip per batch instead of per miss).
func RunShardScale(o RunOpts) (*Result, error) {
	o.fill()
	nRecords := int64(o.n(5000))
	nOps := o.n(40000)
	res := &Result{
		ID: "shardscale", Title: "Lock-striped engine and batch fast path (kqps)",
		Header: []string{"experiment", "config", "workers", "kqps"},
	}
	ds := workload.NewCities()
	spec := workload.WorkloadA(nRecords, ds) // 50/50 mixed

	// --- 1. engine scaling ---
	workersList := []int{1, 4, 8}
	for _, shards := range []int{1, engine.DefaultShards} {
		for _, workers := range workersList {
			e := engine.New(engine.Options{Shards: shards})
			if err := loadAll(engineKV{e}, spec); err != nil {
				return nil, err
			}
			ops := NewOpsMulti(spec, nOps, workers)
			dr := drive(engineKV{e}, ops, workers)
			res.AddRow("engine-mixed", fmt.Sprintf("shards=%d", shards),
				fmt.Sprintf("%d", workers), fmtQPS(dr.QPS))
		}
	}

	// --- 2a. engine batch vs single-op loop ---
	const batchSize = 16
	for _, batched := range []bool{false, true} {
		e := engine.New(engine.Options{})
		if err := loadAll(engineKV{e}, spec); err != nil {
			return nil, err
		}
		label := "single-op"
		if batched {
			label = fmt.Sprintf("batch=%d", batchSize)
		}
		qps, err := driveBatches(engineBatchKV{e}, spec, nOps, 4, batchSize, batched)
		if err != nil {
			return nil, err
		}
		res.AddRow("engine-batch", label, "4", fmtQPS(qps))
	}

	// --- 2b. tiered batch vs single-op against remote storage ---
	// Cold cache + injected RTT: the batch path pays one round trip per
	// batch of misses, the single-op path one per miss.
	for _, batched := range []bool{false, true} {
		eng := engine.New(engine.Options{})
		remote := cache.NewRemote(cache.NewMapStorage(), missRTT)
		tr, err := cache.New(cache.Options{Policy: cache.WriteThrough, Engine: eng, Storage: remote})
		if err != nil {
			return nil, err
		}
		label := "single-op"
		if batched {
			label = fmt.Sprintf("batch=%d", batchSize)
		}
		qps, err := driveBatches(tieredBatchKV{tr}, spec, nOps/4, 4, batchSize, batched)
		if err != nil {
			tr.Close()
			return nil, err
		}
		st := remote.Stats()
		res.AddRow("tiered-batch", label, "4", fmtQPS(qps))
		res.AddNote("tiered-batch %s: %d storage RPCs for %d keys moved",
			label, remote.TotalRPCs(), st.KeysMoved)
		tr.Close()
	}

	res.AddNote("GOMAXPROCS=%d; striped engine should widen its lead over shards=1 as workers grow", runtime.GOMAXPROCS(0))
	res.AddNote("batch rows count keys/s; engine-batch pays off under multicore lock contention (a wash on one core), tiered-batch pays off everywhere by amortizing storage round trips (see RPC counts)")
	return res, nil
}

// batchKV is the op surface of the batch experiment.
type batchKV interface {
	MGet(keys []string) error
	MSet(pairs []workload.Op) error
	Get(key string) error
	Set(key string, val []byte) error
}

type engineBatchKV struct{ e *engine.Engine }

func (b engineBatchKV) MGet(keys []string) (err error) {
	_, err = b.e.MGet(keys)
	return
}
func (b engineBatchKV) MSet(ops []workload.Op) error {
	kvs := make([]engine.KV, len(ops))
	for i, op := range ops {
		kvs[i] = engine.KV{Key: op.Key, Val: op.Value}
	}
	return b.e.MSet(kvs)
}
func (b engineBatchKV) Get(key string) error {
	_, err := b.e.Get(key)
	if err == engine.ErrNotFound {
		return nil
	}
	return err
}
func (b engineBatchKV) Set(key string, val []byte) error { return b.e.Set(key, val) }

type tieredBatchKV struct{ t *cache.Tiered }

func (b tieredBatchKV) MGet(keys []string) (err error) {
	_, err = b.t.BatchGet(keys)
	return
}
func (b tieredBatchKV) MSet(ops []workload.Op) error {
	entries := make(map[string][]byte, len(ops))
	for _, op := range ops {
		entries[op.Key] = op.Value
	}
	return b.t.BatchPut(entries)
}
func (b tieredBatchKV) Get(key string) error {
	_, err := b.t.Get(key)
	if err == cache.ErrNotFound {
		return nil
	}
	return err
}
func (b tieredBatchKV) Set(key string, val []byte) error { return b.t.Set(key, val) }

// batchRound is one pre-split group of batchSize ops.
type batchRound struct {
	reads  []string
	writes []workload.Op
}

// driveBatches replays n mixed ops in groups of batchSize across workers,
// either through the batch API or the equivalent single-op loop, and
// returns keys/second. Workload generation and batch splitting happen
// before the clock starts, so the measurement isolates the op path.
func driveBatches(sys batchKV, spec workload.Spec, n, workers, batchSize int, batched bool) (float64, error) {
	if workers < 1 {
		workers = 1
	}
	per := n / workers
	rounds := make([][]batchRound, workers)
	for w := 0; w < workers; w++ {
		g := workload.NewGenerator(spec, int64(w))
		for done := 0; done < per; done += batchSize {
			var r batchRound
			for _, op := range g.Ops(batchSize) {
				if op.Kind == workload.OpRead {
					r.reads = append(r.reads, op.Key)
				} else {
					r.writes = append(r.writes, op)
				}
			}
			rounds[w] = append(rounds[w], r)
		}
	}
	var firstErr error
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		myRounds := rounds[w]
		wg.Add(1)
		go func() {
			defer wg.Done()
			record := func(err error) bool {
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return false
				}
				return true
			}
			for _, r := range myRounds {
				reads, writes := r.reads, r.writes
				if batched {
					if !record(sys.MGet(reads)) {
						return
					}
					if len(writes) > 0 && !record(sys.MSet(writes)) {
						return
					}
					continue
				}
				for _, k := range reads {
					if !record(sys.Get(k)) {
						return
					}
				}
				for _, op := range writes {
					if !record(sys.Set(op.Key, op.Value)) {
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	elapsed := time.Since(start).Seconds()
	return float64(n) / elapsed, nil
}
