package bench

import (
	"math"
	"time"
)

// Instance specs used by the cost experiments (§6.1/§6.4.1): the standard
// container is 1 core + 4 GB at relative cost 1. Multi-thread systems and
// persistent databases get 4 cores + 16 GB (cost 4). PMem containers add
// byte-addressable persistent memory at a fraction of DRAM's $/GB
// (Optane listed ~1/3-1/4 of DRAM per GB; we price the 4G+12P container
// at 1.25 standard units). Storage-tier containers are disk-heavy.
type instanceSpec struct {
	name   string
	cost   float64
	cores  float64
	dramGB float64
	pmemGB float64
	diskGB float64
}

var (
	cacheInst = instanceSpec{name: "cache-1c4g", cost: 1, cores: 1, dramGB: 4}
	pmemInst  = instanceSpec{name: "pmem-1c4g12p", cost: 1.25, cores: 1, dramGB: 4, pmemGB: 12}
	bigInst   = instanceSpec{name: "big-4c16g", cost: 4, cores: 4, dramGB: 16, diskGB: 128}
	storInst  = instanceSpec{name: "stor-1c4g256d", cost: 1, cores: 1, dramGB: 4, diskGB: 256}
)

// usableFrac derates instance capacity for headroom (the tolerance ratio
// of §2.1).
const usableFrac = 0.85

// missRTT is the injected cache→storage round trip for tiered
// configurations. It is calibrated to the paper's *relative* miss-penalty
// regime rather than an absolute network RTT: the paper's cache ops cost
// ~10µs (≈100 kQPS/core) and its optimized miss path a small multiple of
// that; our in-process cache ops cost ~2.5µs, so ~15µs keeps
// PC_miss/PC_cache in the same ≈6-10× band (see EXPERIMENTS.md, scaling).
const missRTT = 25 * time.Microsecond

// capability is what the replay phase measures for one configuration:
// throughput per instance and physical bytes per logical byte on each
// storage medium.
type capability struct {
	qpsPerInst     float64
	dramPerLogical float64
	pmemPerLogical float64
	diskPerLogical float64
}

// smoothCosts prices a declared workload (Definition 2 metrics): PC from
// throughput need, SC from the binding space axis.
func smoothCosts(cap capability, inst instanceSpec, declQPS, declDataGB float64) (pc, sc float64) {
	if cap.qpsPerInst > 0 {
		pc = inst.cost * declQPS / cap.qpsPerInst
	} else {
		pc = math.Inf(1)
	}
	sc = inst.cost * spaceInstances(cap, inst, declDataGB)
	return pc, sc
}

// spaceInstances returns the (smooth) number of instances the data needs,
// binding on the tightest medium.
func spaceInstances(cap capability, inst instanceSpec, declDataGB float64) float64 {
	need := 0.0
	if cap.dramPerLogical > 0 {
		if inst.dramGB <= 0 {
			return math.Inf(1)
		}
		need = math.Max(need, declDataGB*cap.dramPerLogical/(inst.dramGB*usableFrac))
	}
	if cap.pmemPerLogical > 0 {
		if inst.pmemGB <= 0 {
			return math.Inf(1)
		}
		need = math.Max(need, declDataGB*cap.pmemPerLogical/(inst.pmemGB*usableFrac))
	}
	if cap.diskPerLogical > 0 {
		if inst.diskGB <= 0 {
			return math.Inf(1)
		}
		need = math.Max(need, declDataGB*cap.diskPerLogical/(inst.diskGB*usableFrac))
	}
	return need
}

// tieredCosts prices a tiered configuration: cache instances by DRAM/PMem
// plus storage-tier instances by disk, PC from the measured end-to-end
// throughput (miss path included).
func tieredCosts(cacheCap capability, declQPS, declDataGB float64, cacheSpec instanceSpec) (pc, sc float64) {
	pc, scCache := smoothCosts(capability{
		qpsPerInst:     cacheCap.qpsPerInst,
		dramPerLogical: cacheCap.dramPerLogical,
		pmemPerLogical: cacheCap.pmemPerLogical,
	}, cacheSpec, declQPS, declDataGB)
	scStorage := storInst.cost * spaceInstances(capability{
		diskPerLogical: cacheCap.diskPerLogical,
	}, storInst, declDataGB)
	return pc, scCache + scStorage
}
