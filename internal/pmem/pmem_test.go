package pmem

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestDeviceReadWrite(t *testing.T) {
	d := OpenVolatile(1024, Latency{})
	data := []byte("hello pmem")
	if _, err := d.WriteAt(data, 100); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := d.ReadAt(got, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q want %q", got, data)
	}
}

func TestDeviceBounds(t *testing.T) {
	d := OpenVolatile(64, Latency{})
	if _, err := d.WriteAt(make([]byte, 65), 0); err != ErrOutOfBounds {
		t.Fatalf("want ErrOutOfBounds, got %v", err)
	}
	if _, err := d.WriteAt([]byte{1}, 64); err != ErrOutOfBounds {
		t.Fatalf("want ErrOutOfBounds, got %v", err)
	}
	if _, err := d.ReadAt([]byte{0}, -1); err != ErrOutOfBounds {
		t.Fatalf("want ErrOutOfBounds, got %v", err)
	}
}

func TestDevicePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pmem.dat")
	d, err := Open(path, 4096, Latency{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteAt([]byte("durable"), 7); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(path, 4096, Latency{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got := make([]byte, 7)
	if _, err := d2.ReadAt(got, 7); err != nil {
		t.Fatal(err)
	}
	if string(got) != "durable" {
		t.Fatalf("recovered %q", got)
	}
}

func TestDeviceSizeMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pmem.dat")
	d, err := Open(path, 1024, Latency{})
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	if _, err := Open(path, 2048, Latency{}); err == nil {
		t.Fatal("size mismatch should fail")
	}
}

func TestDeviceClosed(t *testing.T) {
	d := OpenVolatile(64, Latency{})
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteAt([]byte{1}, 0); err != ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if _, err := d.ReadAt([]byte{1}, 0); err != ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("double close should be nil, got %v", err)
	}
}

func TestDeviceLatencyInjection(t *testing.T) {
	lat := Latency{WriteOp: 200 * time.Microsecond}
	d := OpenVolatile(1024, lat)
	start := time.Now()
	for i := 0; i < 10; i++ {
		d.WriteAt([]byte{1}, 0)
	}
	if el := time.Since(start); el < 2*time.Millisecond {
		t.Fatalf("latency injection ineffective: %v", el)
	}
}

func TestDeviceConcurrent(t *testing.T) {
	d := OpenVolatile(1<<16, Latency{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := []byte{byte(g)}
			off := int64(g * 1024)
			for i := 0; i < 500; i++ {
				d.WriteAt(buf, off)
				got := make([]byte, 1)
				d.ReadAt(got, off)
				if got[0] != byte(g) {
					t.Errorf("goroutine %d read %d", g, got[0])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// --- Arena ---

func TestArenaPutGet(t *testing.T) {
	a := NewArena(OpenVolatile(1<<20, Latency{}), 0)
	ref, err := a.Put([]byte("value-1"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Get(ref)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "value-1" {
		t.Fatalf("got %q", got)
	}
}

func TestArenaGetAfterSync(t *testing.T) {
	a := NewArena(OpenVolatile(1<<20, Latency{}), 0)
	ref, _ := a.Put([]byte("synced"))
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	got, err := a.Get(ref)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "synced" {
		t.Fatalf("got %q", got)
	}
}

func TestArenaZeroRef(t *testing.T) {
	a := NewArena(OpenVolatile(1<<20, Latency{}), 0)
	if _, err := a.Get(Ref{}); err == nil {
		t.Fatal("zero ref should error")
	}
	a.Free(Ref{}) // must not panic
}

func TestArenaReuseAfterFree(t *testing.T) {
	a := NewArena(OpenVolatile(1<<20, Latency{}), 0)
	ref1, _ := a.Put(make([]byte, 100))
	a.Sync()
	a.Free(ref1)
	ref2, _ := a.Put(make([]byte, 100))
	if ref1.Off != ref2.Off {
		t.Fatalf("free slot not reused: %d vs %d", ref1.Off, ref2.Off)
	}
}

func TestArenaFull(t *testing.T) {
	a := NewArena(OpenVolatile(256, Latency{}), 0)
	var lastErr error
	for i := 0; i < 100; i++ {
		if _, err := a.Put(make([]byte, 64)); err != nil {
			lastErr = err
			break
		}
	}
	if lastErr != ErrArenaFull {
		t.Fatalf("want ErrArenaFull, got %v", lastErr)
	}
}

func TestArenaUsedAccounting(t *testing.T) {
	a := NewArena(OpenVolatile(1<<20, Latency{}), 0)
	if a.Used() != 0 {
		t.Fatal("fresh arena not empty")
	}
	ref, _ := a.Put(make([]byte, 60)) // class 64
	if a.Used() != 64 {
		t.Fatalf("used = %d, want 64", a.Used())
	}
	a.Free(ref)
	if a.Used() != 0 {
		t.Fatalf("used after free = %d", a.Used())
	}
}

func TestArenaManyValuesRoundTrip(t *testing.T) {
	a := NewArena(OpenVolatile(4<<20, Latency{}), 1024)
	rng := rand.New(rand.NewSource(9))
	refs := make([]Ref, 0, 500)
	vals := make([][]byte, 0, 500)
	for i := 0; i < 500; i++ {
		v := make([]byte, 1+rng.Intn(2000))
		rng.Read(v)
		ref, err := a.Put(v)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
		vals = append(vals, v)
	}
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	for i, ref := range refs {
		got, err := a.Get(ref)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if !bytes.Equal(got, vals[i]) {
			t.Fatalf("value %d mismatch", i)
		}
	}
}

func TestSizeClassProperty(t *testing.T) {
	f := func(nRaw uint16) bool {
		n := int(nRaw)
		c := sizeClass(n)
		return c >= n && c >= 32 && (c%32 == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- Ring ---

func TestRingAppendConsume(t *testing.T) {
	r, err := NewRing(OpenVolatile(4096, Latency{}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := r.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		got, err := r.Consume()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != fmt.Sprintf("rec-%d", i) {
			t.Fatalf("got %q at %d", got, i)
		}
	}
	if _, err := r.Consume(); err != ErrRingEmpty {
		t.Fatalf("want ErrRingEmpty, got %v", err)
	}
}

func TestRingWrapAround(t *testing.T) {
	r, err := NewRing(OpenVolatile(ringHeaderSize+128, Latency{}))
	if err != nil {
		t.Fatal(err)
	}
	// Repeatedly fill and drain so offsets wrap several times.
	payload := bytes.Repeat([]byte("x"), 40)
	for round := 0; round < 20; round++ {
		if _, err := r.Append(payload); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		got, err := r.Consume()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round %d: payload corrupted across wrap", round)
		}
	}
}

func TestRingFull(t *testing.T) {
	r, err := NewRing(OpenVolatile(ringHeaderSize+64, Latency{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Append(make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Append(make([]byte, 40)); err != ErrRingFull {
		t.Fatalf("want ErrRingFull, got %v", err)
	}
	if _, err := r.Append(make([]byte, 1000)); err != ErrTooLarge {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestRingConsumeBatch(t *testing.T) {
	r, _ := NewRing(OpenVolatile(4096, Latency{}))
	for i := 0; i < 5; i++ {
		r.Append([]byte{byte(i)})
	}
	batch, err := r.ConsumeBatch(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 3 || batch[0][0] != 0 || batch[2][0] != 2 {
		t.Fatalf("bad batch: %v", batch)
	}
	batch, _ = r.ConsumeBatch(10)
	if len(batch) != 2 {
		t.Fatalf("second batch len %d", len(batch))
	}
	batch, err = r.ConsumeBatch(10)
	if err != nil || len(batch) != 0 {
		t.Fatalf("empty batch: %v %v", batch, err)
	}
}

func TestRingRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ring.dat")
	dev, err := Open(path, 4096, Latency{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(dev)
	if err != nil {
		t.Fatal(err)
	}
	r.Append([]byte("survive-1"))
	r.Append([]byte("survive-2"))
	if _, err := r.Consume(); err != nil {
		t.Fatal(err)
	}
	dev.Close()

	dev2, err := Open(path, 4096, Latency{})
	if err != nil {
		t.Fatal(err)
	}
	defer dev2.Close()
	r2, err := NewRing(dev2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() == 0 {
		t.Fatal("recovered ring should have one record")
	}
	got, err := r2.Consume()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "survive-2" {
		t.Fatalf("recovered %q", got)
	}
}

func TestRingLen(t *testing.T) {
	r, _ := NewRing(OpenVolatile(4096, Latency{}))
	if r.Len() != 0 {
		t.Fatal("fresh ring not empty")
	}
	r.Append([]byte("abcd"))
	if r.Len() != recHeaderSize+4 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestRingPropertyRoundTrip(t *testing.T) {
	// Property: any sequence of appends drains back in order with equal bytes.
	f := func(payloads [][]byte) bool {
		r, err := NewRing(OpenVolatile(1<<20, Latency{}))
		if err != nil {
			return false
		}
		var kept [][]byte
		for _, p := range payloads {
			if len(p) > 1000 {
				p = p[:1000]
			}
			if _, err := r.Append(p); err != nil {
				return false
			}
			kept = append(kept, p)
		}
		for _, want := range kept {
			got, err := r.Consume()
			if err != nil {
				return false
			}
			if !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
