package pmem

import (
	"encoding/binary"
	"errors"
	"sort"
	"sync"
)

// Arena is a value allocator over a Device, implementing the paper's
// DRAM-extension strategy (§4.3): "small, frequently accessed data (keys
// and indexes) are stored in DRAM, while larger value data resides in PMem".
// Callers keep a Ref (offset+length) in their DRAM-resident index and fetch
// values through the arena.
//
// Writes are batched in DRAM and bulk-transferred, matching the paper's
// optimization: "data structures are assembled in DRAM before bulk transfer
// to PMem, reducing the impact on performance costs".
type Arena struct {
	mu   sync.Mutex
	dev  *Device
	next int64
	free map[int][]int64 // size-class -> free offsets
	used int64

	// write batching
	batch    []pendingWrite
	batchLen int
	batchMax int
}

type pendingWrite struct {
	off  int64
	data []byte
}

// Ref locates a value inside the arena.
type Ref struct {
	Off int64
	Len int32
}

// IsZero reports whether the ref is unset.
func (r Ref) IsZero() bool { return r.Off == 0 && r.Len == 0 }

// ErrArenaFull is returned when the device has no room for an allocation.
var ErrArenaFull = errors.New("pmem: arena full")

// sizeClass rounds n up to the allocation granularity (32B classes below
// 1 KiB, 256B classes above) to bound fragmentation.
func sizeClass(n int) int {
	switch {
	case n <= 0:
		return 32
	case n < 1024:
		return (n + 31) &^ 31
	default:
		return (n + 255) &^ 255
	}
}

// NewArena creates an arena over dev. batchMax bounds the DRAM staging
// buffer in bytes before an automatic flush to the device (0 = 64 KiB).
func NewArena(dev *Device, batchMax int) *Arena {
	if batchMax <= 0 {
		batchMax = 64 << 10
	}
	return &Arena{
		dev:      dev,
		next:     headerSlot, // offset 0..headerSlot reserved (Ref zero-value must stay invalid)
		free:     make(map[int][]int64),
		batchMax: batchMax,
	}
}

// headerSlot reserves the first bytes of the device so that offset 0 is
// never a valid allocation (keeps Ref{} meaning "absent").
const headerSlot = 64

// Put stores val and returns its ref. The data is staged in DRAM and
// transferred in batches; call Sync for durability.
func (a *Arena) Put(val []byte) (Ref, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	cls := sizeClass(len(val) + 4) // 4-byte length header
	var off int64
	if lst := a.free[cls]; len(lst) > 0 {
		off = lst[len(lst)-1]
		a.free[cls] = lst[:len(lst)-1]
	} else {
		if a.next+int64(cls) > int64(a.dev.Size()) {
			return Ref{}, ErrArenaFull
		}
		off = a.next
		a.next += int64(cls)
	}
	buf := make([]byte, 4+len(val))
	binary.LittleEndian.PutUint32(buf, uint32(len(val)))
	copy(buf[4:], val)
	a.batch = append(a.batch, pendingWrite{off: off, data: buf})
	a.batchLen += len(buf)
	a.used += int64(cls)
	if a.batchLen >= a.batchMax {
		if err := a.drainLocked(); err != nil {
			return Ref{}, err
		}
	}
	return Ref{Off: off, Len: int32(len(val))}, nil
}

// drainLocked bulk-writes the staged batch to the device. Writes are
// coalesced into runs of adjacent offsets to model bulk transfer.
func (a *Arena) drainLocked() error {
	if len(a.batch) == 0 {
		return nil
	}
	sort.Slice(a.batch, func(i, j int) bool { return a.batch[i].off < a.batch[j].off })
	runStart := a.batch[0].off
	run := append([]byte(nil), a.batch[0].data...)
	flushRun := func() error {
		_, err := a.dev.WriteAt(run, runStart)
		return err
	}
	for _, w := range a.batch[1:] {
		if w.off == runStart+int64(len(run)) {
			run = append(run, w.data...)
			continue
		}
		if err := flushRun(); err != nil {
			return err
		}
		runStart, run = w.off, append(run[:0], w.data...)
	}
	if err := flushRun(); err != nil {
		return err
	}
	a.batch = a.batch[:0]
	a.batchLen = 0
	return nil
}

// Sync drains the staging buffer and flushes the device.
func (a *Arena) Sync() error {
	a.mu.Lock()
	if err := a.drainLocked(); err != nil {
		a.mu.Unlock()
		return err
	}
	a.mu.Unlock()
	return a.dev.Flush()
}

// Get fetches the value for ref. The staging buffer is consulted first so
// unsynced values are readable (cache-coherent view).
func (a *Arena) Get(ref Ref) ([]byte, error) {
	if ref.IsZero() {
		return nil, errors.New("pmem: zero ref")
	}
	a.mu.Lock()
	for i := len(a.batch) - 1; i >= 0; i-- {
		if a.batch[i].off == ref.Off {
			val := make([]byte, ref.Len)
			copy(val, a.batch[i].data[4:])
			a.mu.Unlock()
			return val, nil
		}
	}
	a.mu.Unlock()
	buf := make([]byte, 4+int(ref.Len))
	if _, err := a.dev.ReadAt(buf, ref.Off); err != nil {
		return nil, err
	}
	stored := binary.LittleEndian.Uint32(buf)
	if stored != uint32(ref.Len) {
		return nil, errors.New("pmem: ref length mismatch (corrupt or stale ref)")
	}
	return buf[4:], nil
}

// Free returns the allocation to the free list for reuse.
func (a *Arena) Free(ref Ref) {
	if ref.IsZero() {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	// Drop any staged write for this ref.
	for i := range a.batch {
		if a.batch[i].off == ref.Off {
			a.batchLen -= len(a.batch[i].data)
			a.batch = append(a.batch[:i], a.batch[i+1:]...)
			break
		}
	}
	cls := sizeClass(int(ref.Len) + 4)
	a.free[cls] = append(a.free[cls], ref.Off)
	a.used -= int64(cls)
}

// Used reports bytes currently allocated (including class rounding).
func (a *Arena) Used() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

// Capacity reports the underlying device size.
func (a *Arena) Capacity() int64 { return int64(a.dev.Size()) }
