// Package pmem simulates a persistent-memory device (paper §4.3).
//
// The paper deploys Intel Optane DCPMM in App Direct mode. That hardware is
// not available here, so — per the reproduction's substitution rule — this
// package implements the closest synthetic equivalent exercising the same
// code paths: a byte-addressable region that
//
//   - persists across process restarts (file-backed),
//   - is slower than DRAM by a configurable factor (injected latencies,
//     asymmetric: writes cost more than reads, as on Optane),
//   - is durable only after an explicit Flush (clwb/fence analog),
//   - is cheaper per GB than DRAM in the cost model (see internal/core).
//
// Three building blocks are provided: Device (raw region), Arena (value
// allocator used for the DRAM-extension strategy: keys and indexes stay in
// DRAM, values move to PMem), and Ring (a persistent ring buffer used for
// WAL persistence before batch-moving to slower storage).
package pmem

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"
)

// Latency describes injected access costs. Zero values disable injection
// (useful in unit tests); benchmarks enable a calibrated profile.
type Latency struct {
	ReadOp   time.Duration // fixed cost per read call
	WriteOp  time.Duration // fixed cost per write call
	ReadPer  time.Duration // additional cost per 256 bytes read
	WritePer time.Duration // additional cost per 256 bytes written
}

// DefaultLatency approximates Optane DCPMM relative to DRAM:
// ~2-3x read latency, ~5-8x write latency at cacheline granularity.
// Values are intentionally tiny; they model relative cost, not wall time.
var DefaultLatency = Latency{
	ReadOp:   150 * time.Nanosecond,
	WriteOp:  400 * time.Nanosecond,
	ReadPer:  30 * time.Nanosecond,
	WritePer: 80 * time.Nanosecond,
}

// spinWait busy-waits for d; time.Sleep cannot express sub-microsecond
// delays, and the point of injection is to shape *relative* throughput.
func spinWait(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

func (l Latency) readCost(n int) time.Duration {
	return l.ReadOp + l.ReadPer*time.Duration((n+255)/256)
}

func (l Latency) writeCost(n int) time.Duration {
	return l.WriteOp + l.WritePer*time.Duration((n+255)/256)
}

// Device is a byte-addressable persistent region.
type Device struct {
	mu      sync.RWMutex
	buf     []byte
	file    *os.File // nil for volatile (test) devices
	lat     Latency
	dirty   bool
	closed  bool
	flushes int64
}

// Errors returned by Device operations.
var (
	ErrClosed      = errors.New("pmem: device closed")
	ErrOutOfBounds = errors.New("pmem: access out of bounds")
)

// Open maps (creates or reopens) a device of the given size backed by path.
// If the file exists its contents are recovered; size must match.
func Open(path string, size int, lat Latency) (*Device, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pmem: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pmem: stat %s: %w", path, err)
	}
	buf := make([]byte, size)
	if st.Size() > 0 {
		if st.Size() != int64(size) {
			f.Close()
			return nil, fmt.Errorf("pmem: %s has size %d, want %d", path, st.Size(), size)
		}
		if _, err := f.ReadAt(buf, 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("pmem: recover %s: %w", path, err)
		}
	} else {
		if err := f.Truncate(int64(size)); err != nil {
			f.Close()
			return nil, fmt.Errorf("pmem: truncate %s: %w", path, err)
		}
	}
	return &Device{buf: buf, file: f, lat: lat}, nil
}

// OpenVolatile creates an in-memory device with no backing file. Flush is a
// no-op; used in tests and when modeling PMem purely as a capacity tier.
func OpenVolatile(size int, lat Latency) *Device {
	return &Device{buf: make([]byte, size), lat: lat}
}

// Size returns the device capacity in bytes.
func (d *Device) Size() int { return len(d.buf) }

// ReadAt copies len(p) bytes from offset off into p.
func (d *Device) ReadAt(p []byte, off int64) (int, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return 0, ErrClosed
	}
	if off < 0 || off+int64(len(p)) > int64(len(d.buf)) {
		return 0, ErrOutOfBounds
	}
	spinWait(d.lat.readCost(len(p)))
	copy(p, d.buf[off:])
	return len(p), nil
}

// WriteAt copies p into the device at offset off. The write is visible to
// readers immediately but durable only after Flush.
func (d *Device) WriteAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	if off < 0 || off+int64(len(p)) > int64(len(d.buf)) {
		return 0, ErrOutOfBounds
	}
	spinWait(d.lat.writeCost(len(p)))
	copy(d.buf[off:], p)
	d.dirty = true
	return len(p), nil
}

// Flush makes all prior writes durable (persist-barrier analog).
func (d *Device) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if d.file == nil || !d.dirty {
		return nil
	}
	if _, err := d.file.WriteAt(d.buf, 0); err != nil {
		return fmt.Errorf("pmem: flush: %w", err)
	}
	d.dirty = false
	d.flushes++
	return nil
}

// FlushRange persists only [off, off+n), cheaper than a full Flush.
func (d *Device) FlushRange(off int64, n int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if off < 0 || off+int64(n) > int64(len(d.buf)) {
		return ErrOutOfBounds
	}
	if d.file == nil {
		return nil
	}
	if _, err := d.file.WriteAt(d.buf[off:off+int64(n)], off); err != nil {
		return fmt.Errorf("pmem: flush range: %w", err)
	}
	d.flushes++
	return nil
}

// Flushes reports how many flush operations have completed (for tests).
func (d *Device) Flushes() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.flushes
}

// Close flushes and releases the device.
func (d *Device) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.mu.Unlock()
	if err := d.Flush(); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	if d.file != nil {
		return d.file.Close()
	}
	return nil
}
