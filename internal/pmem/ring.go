package pmem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
)

// Ring is a persistent ring buffer over a Device, implementing the paper's
// WAL-on-PMem strategy (§4.3): "WAL files are first written to a PMem-based
// persistent ring buffer, then batch-moved to cloud storage, achieving high
// throughput and real-time persistence".
//
// Layout:
//
//	[0,  8)  head (consume offset, monotonically increasing logical offset)
//	[8, 16)  tail (append offset, logical)
//	[16,24)  capacity (sanity check on reopen)
//	[64, 64+cap) data region, logical offsets wrap modulo cap
//
// Each record: 4-byte length, 4-byte CRC32C, payload.
// Append persists the record region and the tail pointer; Consume persists
// the head pointer. Recovery trusts the persisted pointers.
type Ring struct {
	mu  sync.Mutex
	dev *Device
	cap int64
	// logical offsets; data offset = headerSize + logical%cap
	head int64
	tail int64
}

const (
	ringHeaderSize = 64
	recHeaderSize  = 8
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Ring errors.
var (
	ErrRingFull  = errors.New("pmem: ring full")
	ErrRingEmpty = errors.New("pmem: ring empty")
	ErrCorrupt   = errors.New("pmem: ring record corrupt")
	ErrTooLarge  = errors.New("pmem: record larger than ring capacity")
)

// NewRing initializes (or recovers) a ring over dev. The usable capacity is
// dev.Size() - 64 header bytes.
func NewRing(dev *Device) (*Ring, error) {
	if dev.Size() <= ringHeaderSize+recHeaderSize {
		return nil, fmt.Errorf("pmem: device too small for ring (%d bytes)", dev.Size())
	}
	r := &Ring{dev: dev, cap: int64(dev.Size() - ringHeaderSize)}
	hdr := make([]byte, 24)
	if _, err := dev.ReadAt(hdr, 0); err != nil {
		return nil, err
	}
	head := int64(binary.LittleEndian.Uint64(hdr[0:8]))
	tail := int64(binary.LittleEndian.Uint64(hdr[8:16]))
	capStored := int64(binary.LittleEndian.Uint64(hdr[16:24]))
	if capStored != 0 && capStored != r.cap {
		return nil, fmt.Errorf("pmem: ring capacity changed (%d -> %d)", capStored, r.cap)
	}
	if head < 0 || tail < head || tail-head > r.cap {
		// Corrupt header — reset (a fresh device also lands here with 0,0).
		head, tail = 0, 0
	}
	r.head, r.tail = head, tail
	if err := r.writeHeader(); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Ring) writeHeader() error {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(r.head))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(r.tail))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(r.cap))
	if _, err := r.dev.WriteAt(hdr, 0); err != nil {
		return err
	}
	return r.dev.FlushRange(0, 24)
}

// writeWrapped writes p at logical offset lo, wrapping modulo cap.
func (r *Ring) writeWrapped(p []byte, lo int64) error {
	pos := lo % r.cap
	first := r.cap - pos
	if int64(len(p)) <= first {
		_, err := r.dev.WriteAt(p, ringHeaderSize+pos)
		if err != nil {
			return err
		}
		return r.dev.FlushRange(ringHeaderSize+pos, len(p))
	}
	if _, err := r.dev.WriteAt(p[:first], ringHeaderSize+pos); err != nil {
		return err
	}
	if err := r.dev.FlushRange(ringHeaderSize+pos, int(first)); err != nil {
		return err
	}
	if _, err := r.dev.WriteAt(p[first:], ringHeaderSize); err != nil {
		return err
	}
	return r.dev.FlushRange(ringHeaderSize, len(p)-int(first))
}

func (r *Ring) readWrapped(p []byte, lo int64) error {
	pos := lo % r.cap
	first := r.cap - pos
	if int64(len(p)) <= first {
		_, err := r.dev.ReadAt(p, ringHeaderSize+pos)
		return err
	}
	if _, err := r.dev.ReadAt(p[:first], ringHeaderSize+pos); err != nil {
		return err
	}
	_, err := r.dev.ReadAt(p[first:], ringHeaderSize)
	return err
}

// Append writes one record durably and returns its logical offset.
func (r *Ring) Append(payload []byte) (int64, error) {
	need := int64(recHeaderSize + len(payload))
	if need > r.cap {
		return 0, ErrTooLarge
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tail-r.head+need > r.cap {
		return 0, ErrRingFull
	}
	rec := make([]byte, need)
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(payload, crcTable))
	copy(rec[recHeaderSize:], payload)
	off := r.tail
	if err := r.writeWrapped(rec, off); err != nil {
		return 0, err
	}
	r.tail += need
	if err := r.writeHeader(); err != nil {
		return 0, err
	}
	return off, nil
}

// Consume removes and returns the oldest record.
func (r *Ring) Consume() ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	payload, next, err := r.peekLocked()
	if err != nil {
		return nil, err
	}
	r.head = next
	if err := r.writeHeader(); err != nil {
		return nil, err
	}
	return payload, nil
}

// ConsumeBatch removes up to max records, returning them oldest-first.
// This is the "batch-moved to cloud storage" drain path.
func (r *Ring) ConsumeBatch(max int) ([][]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out [][]byte
	for len(out) < max {
		payload, next, err := r.peekLocked()
		if err == ErrRingEmpty {
			break
		}
		if err != nil {
			return out, err
		}
		out = append(out, payload)
		r.head = next
	}
	if len(out) > 0 {
		if err := r.writeHeader(); err != nil {
			return out, err
		}
	}
	return out, nil
}

// peekLocked reads the record at head without consuming it.
func (r *Ring) peekLocked() (payload []byte, next int64, err error) {
	if r.head == r.tail {
		return nil, 0, ErrRingEmpty
	}
	hdr := make([]byte, recHeaderSize)
	if err := r.readWrapped(hdr, r.head); err != nil {
		return nil, 0, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if int64(recHeaderSize+n) > r.tail-r.head {
		return nil, 0, ErrCorrupt
	}
	payload = make([]byte, n)
	if err := r.readWrapped(payload, r.head+recHeaderSize); err != nil {
		return nil, 0, err
	}
	if crc32.Checksum(payload, crcTable) != want {
		return nil, 0, ErrCorrupt
	}
	return payload, r.head + recHeaderSize + int64(n), nil
}

// Len reports the number of unconsumed bytes.
func (r *Ring) Len() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tail - r.head
}

// Capacity reports the ring data capacity in bytes.
func (r *Ring) Capacity() int64 { return r.cap }
