// Package faults is a deterministic fault-injection seam for chaos
// drills: a net.Conn wrapper (injected latency, throughput caps,
// byte-level stalls, one-sided partitions, scripted resets) pluggable
// into server accept loops and client/replica dials, a TCP proxy for
// cross-process drills, and error-and-latency injectors for the disk
// seams (cache.Storage, wal.Appender).
//
// Faults are scripted, never random: every control is an explicit
// toggle or countdown the test flips, so a drill that fails replays the
// same way under -race and GOMAXPROCS=1. Controls take effect on the
// next I/O call; a stall also interrupts calls already blocked in it
// when cleared (or when the connection closes).
package faults

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ErrInjectedReset is returned by a Conn whose scripted reset fired.
var ErrInjectedReset = errors.New("faults: injected connection reset")

// Injector is the shared control surface for one fault domain (one
// link, one listener, one proxy). All methods are safe for concurrent
// use; zero value = no faults.
type Injector struct {
	mu   sync.Mutex
	cond *sync.Cond

	latency    time.Duration // added to every Read and Write
	byteRate   int64         // bytes/sec cap per direction (0 = unlimited)
	stallReads bool          // inbound bytes blackholed (block, don't error)
	stallWrite bool          // outbound bytes blackholed
	resetIn    int64         // bytes written until scripted reset; <0 = off

	stalledOps int64 // ops currently blocked in a stall (observability)
}

// NewInjector returns a no-fault injector.
func NewInjector() *Injector {
	i := &Injector{resetIn: -1}
	i.cond = sync.NewCond(&i.mu)
	return i
}

func (i *Injector) init() {
	if i.cond == nil {
		i.cond = sync.NewCond(&i.mu)
		i.resetIn = -1
	}
}

// SetLatency injects d of extra latency on every Read and Write.
func (i *Injector) SetLatency(d time.Duration) {
	i.mu.Lock()
	i.init()
	i.latency = d
	i.mu.Unlock()
}

// SetByteRate caps throughput to bps bytes/sec in each direction
// (0 removes the cap) — the "10x-slowed link" knob.
func (i *Injector) SetByteRate(bps int64) {
	i.mu.Lock()
	i.init()
	i.byteRate = bps
	i.mu.Unlock()
}

// StallReads blackholes inbound bytes while on: Reads block (as a
// partition looks to the reader — no bytes, no error) until cleared or
// the connection closes. One-sided partitions compose from StallReads/
// StallWrites.
func (i *Injector) StallReads(on bool) {
	i.mu.Lock()
	i.init()
	i.stallReads = on
	i.cond.Broadcast()
	i.mu.Unlock()
}

// StallWrites blackholes outbound bytes while on.
func (i *Injector) StallWrites(on bool) {
	i.mu.Lock()
	i.init()
	i.stallWrite = on
	i.cond.Broadcast()
	i.mu.Unlock()
}

// Partition blackholes both directions (a full network partition).
func (i *Injector) Partition() {
	i.mu.Lock()
	i.init()
	i.stallReads, i.stallWrite = true, true
	i.cond.Broadcast()
	i.mu.Unlock()
}

// Heal clears stalls, latency, rate caps, and any pending reset.
func (i *Injector) Heal() {
	i.mu.Lock()
	i.init()
	i.latency, i.byteRate = 0, 0
	i.stallReads, i.stallWrite = false, false
	i.resetIn = -1
	i.cond.Broadcast()
	i.mu.Unlock()
}

// ResetAfterBytes scripts a connection reset: after n more written
// bytes, Writes on wrapped conns fail with ErrInjectedReset and the
// underlying conn closes. n==0 resets on the next write.
func (i *Injector) ResetAfterBytes(n int64) {
	i.mu.Lock()
	i.init()
	i.resetIn = n
	i.mu.Unlock()
}

// StalledOps reports how many I/O calls are currently blocked in a
// stall (drill assertions: "the link really is blackholed").
func (i *Injector) StalledOps() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.stalledOps
}

// stallGate blocks while the direction is stalled; returns false when
// the conn closed while waiting.
func (i *Injector) stallGate(write bool, closed *closeFlag) bool {
	i.mu.Lock()
	i.init()
	for (write && i.stallWrite) || (!write && i.stallReads) {
		if closed.isClosed() {
			i.mu.Unlock()
			return false
		}
		i.stalledOps++
		i.cond.Wait()
		i.stalledOps--
	}
	i.mu.Unlock()
	return !closed.isClosed()
}

// params snapshots latency and rate under the lock.
func (i *Injector) params() (time.Duration, int64) {
	i.mu.Lock()
	i.init()
	l, r := i.latency, i.byteRate
	i.mu.Unlock()
	return l, r
}

// consumeReset decrements the scripted-reset countdown by n written
// bytes and reports whether the reset fires on this write.
func (i *Injector) consumeReset(n int64) bool {
	i.mu.Lock()
	i.init()
	if i.resetIn < 0 {
		i.mu.Unlock()
		return false
	}
	i.resetIn -= n
	fire := i.resetIn < 0
	if fire {
		i.resetIn = -1
	}
	i.mu.Unlock()
	return fire
}

// wake unblocks stalled ops so a closing conn can observe its flag.
func (i *Injector) wake() {
	i.mu.Lock()
	i.init()
	i.cond.Broadcast()
	i.mu.Unlock()
}

// closeFlag is shared between a Conn and the stall gate so Close
// interrupts a blocked stall.
type closeFlag struct {
	mu     sync.Mutex
	closed bool
}

func (f *closeFlag) isClosed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed
}

func (f *closeFlag) set() {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
}

// Conn applies an Injector's faults to one net.Conn. Both directions
// share the injector's controls; deadlines, addresses and everything
// else delegate to the wrapped conn.
type Conn struct {
	net.Conn
	inj *Injector
	cf  closeFlag
}

// WrapConn applies i's faults to nc.
func WrapConn(nc net.Conn, i *Injector) *Conn {
	return &Conn{Conn: nc, inj: i}
}

// throttle sleeps out the injected latency plus the rate-cap cost of n
// bytes.
func throttle(latency time.Duration, rate int64, n int) {
	d := latency
	if rate > 0 && n > 0 {
		d += time.Duration(int64(n) * int64(time.Second) / rate)
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// Read implements net.Conn with the injector's read-side faults.
func (c *Conn) Read(p []byte) (int, error) {
	if !c.inj.stallGate(false, &c.cf) {
		return 0, net.ErrClosed
	}
	latency, rate := c.inj.params()
	n, err := c.Conn.Read(p)
	throttle(latency, rate, n)
	return n, err
}

// Write implements net.Conn with the injector's write-side faults.
func (c *Conn) Write(p []byte) (int, error) {
	if !c.inj.stallGate(true, &c.cf) {
		return 0, net.ErrClosed
	}
	if c.inj.consumeReset(int64(len(p))) {
		c.Close()
		return 0, ErrInjectedReset
	}
	latency, rate := c.inj.params()
	n, err := c.Conn.Write(p)
	throttle(latency, rate, n)
	return n, err
}

// Close closes the wrapped conn and interrupts any stalled I/O on it.
func (c *Conn) Close() error {
	c.cf.set()
	err := c.Conn.Close()
	c.inj.wake()
	return err
}

// Listener wraps accepted connections with a shared injector — the
// server-accept-loop seam.
type Listener struct {
	net.Listener
	inj *Injector
}

// WrapListener applies i's faults to every conn ln accepts.
func WrapListener(ln net.Listener, i *Injector) *Listener {
	return &Listener{Listener: ln, inj: i}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return WrapConn(nc, l.inj), nil
}

// Dialer returns a dial function (the replica/client dial seam) whose
// connections carry i's faults.
func Dialer(i *Injector) func(addr string, timeout time.Duration) (net.Conn, error) {
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		nc, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		return WrapConn(nc, i), nil
	}
}
