package faults

import (
	"errors"
	"sync/atomic"
	"time"

	"tierbase/internal/cache"
	"tierbase/internal/wal"
)

// ErrInjectedDisk is the error the disk injectors return while failing.
var ErrInjectedDisk = errors.New("faults: injected disk error")

// diskControls is the shared scripting surface of the Storage and WAL
// injectors: fail reads and/or writes (toggle or countdown), inject
// per-op latency, count what happened.
type diskControls struct {
	failReads  atomic.Bool
	failWrites atomic.Bool
	failNext   atomic.Int64 // fail this many upcoming ops, then auto-clear
	latency    atomic.Int64 // ns added per op

	ops      atomic.Int64
	failures atomic.Int64
}

// FailReads makes read ops fail with ErrInjectedDisk while on.
func (d *diskControls) FailReads(on bool) { d.failReads.Store(on) }

// FailWrites makes write ops fail with ErrInjectedDisk while on.
func (d *diskControls) FailWrites(on bool) { d.failWrites.Store(on) }

// FailNext fails the next n ops of any kind, then auto-clears — the
// "transient error burst" script.
func (d *diskControls) FailNext(n int64) { d.failNext.Store(n) }

// SetLatency injects d of latency on every op.
func (d *diskControls) SetLatency(lat time.Duration) { d.latency.Store(int64(lat)) }

// Ops reports total ops seen; Failures reports how many were failed.
func (d *diskControls) Ops() int64      { return d.ops.Load() }
func (d *diskControls) Failures() int64 { return d.failures.Load() }

// gate applies latency and decides one op's fate.
func (d *diskControls) gate(write bool) error {
	d.ops.Add(1)
	if lat := d.latency.Load(); lat > 0 {
		time.Sleep(time.Duration(lat))
	}
	for {
		n := d.failNext.Load()
		if n <= 0 {
			break
		}
		if d.failNext.CompareAndSwap(n, n-1) {
			d.failures.Add(1)
			return ErrInjectedDisk
		}
	}
	if (write && d.failWrites.Load()) || (!write && d.failReads.Load()) {
		d.failures.Add(1)
		return ErrInjectedDisk
	}
	return nil
}

// Storage wraps a cache.Storage with scripted errors and latency — the
// erroring-disk drill's storage-tier seam.
type Storage struct {
	diskControls
	Inner cache.Storage
}

// WrapStorage wraps inner with fault controls.
func WrapStorage(inner cache.Storage) *Storage { return &Storage{Inner: inner} }

// Get implements cache.Storage.
func (s *Storage) Get(key string) ([]byte, bool, error) {
	if err := s.gate(false); err != nil {
		return nil, false, err
	}
	return s.Inner.Get(key)
}

// Put implements cache.Storage.
func (s *Storage) Put(key string, val []byte) error {
	if err := s.gate(true); err != nil {
		return err
	}
	return s.Inner.Put(key, val)
}

// Delete implements cache.Storage.
func (s *Storage) Delete(key string) error {
	if err := s.gate(true); err != nil {
		return err
	}
	return s.Inner.Delete(key)
}

// BatchGet implements cache.Storage.
func (s *Storage) BatchGet(keys []string) (map[string][]byte, error) {
	if err := s.gate(false); err != nil {
		return nil, err
	}
	return s.Inner.BatchGet(keys)
}

// BatchPut implements cache.Storage.
func (s *Storage) BatchPut(entries map[string][]byte) error {
	if err := s.gate(true); err != nil {
		return err
	}
	return s.Inner.BatchPut(entries)
}

// BatchDelete implements cache.Storage.
func (s *Storage) BatchDelete(keys []string) error {
	if err := s.gate(true); err != nil {
		return err
	}
	return s.Inner.BatchDelete(keys)
}

// FlushAll forwards the optional storage-clear hook when the inner
// storage supports it (gated like a write).
func (s *Storage) FlushAll() error {
	if err := s.gate(true); err != nil {
		return err
	}
	return cache.FlushStorage(s.Inner)
}

var _ cache.Storage = (*Storage)(nil)

// WAL wraps a wal.Appender with scripted errors and latency — the
// erroring-disk drill's log seam (inject via lsm.Options.WALFactory).
type WAL struct {
	diskControls
	Inner wal.Appender
}

// WrapWAL wraps inner with fault controls.
func WrapWAL(inner wal.Appender) *WAL { return &WAL{Inner: inner} }

// Append implements wal.Appender.
func (w *WAL) Append(payload []byte) error {
	if err := w.gate(true); err != nil {
		return err
	}
	return w.Inner.Append(payload)
}

// Sync implements wal.Appender.
func (w *WAL) Sync() error {
	if err := w.gate(true); err != nil {
		return err
	}
	return w.Inner.Sync()
}

// Close implements wal.Appender (never injected: teardown must work).
func (w *WAL) Close() error { return w.Inner.Close() }

var _ wal.Appender = (*WAL)(nil)
