package faults

import (
	"fmt"
	"os"
)

// On-disk corruption injection: flip bits in files that are already
// written and closed, simulating silent media decay (a misdirected
// write, a rotted sector) rather than an erroring disk. The read path
// must detect the damage by checksum and surface a typed error — never
// serve the flipped bytes as data.

// FlipBit XORs one bit in the file at path: the byte at offset gets bit
// (0-7) inverted in place. Offsets are from the start of the file.
func FlipBit(path string, offset int64, bit uint) error {
	if bit > 7 {
		return fmt.Errorf("faults: bit %d out of range", bit)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], offset); err != nil {
		return fmt.Errorf("faults: read byte to flip: %w", err)
	}
	b[0] ^= 1 << bit
	if _, err := f.WriteAt(b[:], offset); err != nil {
		return fmt.Errorf("faults: write flipped byte: %w", err)
	}
	return nil
}

// FlipBytes XORs every byte in [offset, offset+n) with 0xFF — a denser
// corruption burst for when a single bit flip could land in slack space.
func FlipBytes(path string, offset, n int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, n)
	if _, err := f.ReadAt(buf, offset); err != nil {
		return fmt.Errorf("faults: read bytes to flip: %w", err)
	}
	for i := range buf {
		buf[i] ^= 0xFF
	}
	if _, err := f.WriteAt(buf, offset); err != nil {
		return fmt.Errorf("faults: write flipped bytes: %w", err)
	}
	return nil
}
