package faults

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"tierbase/internal/lsm"
)

// TestCorruptBlockSurfacesTypedError: a bit flipped in an SSTable data
// block (silent media corruption, injected with FlipBit) must fail the
// read with lsm.ErrBadBlock — never serve the damaged bytes — and count
// in Stats.BadBlocks, which INFO storage reports per shard.
func TestCorruptBlockSurfacesTypedError(t *testing.T) {
	dir := t.TempDir()
	db, err := lsm.Open(lsm.Options{Dir: dir, DisableWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	val := bytes.Repeat([]byte("c"), 128)
	for i := 0; i < 32; i++ {
		if err := db.Put([]byte(fmt.Sprintf("corrupt%04d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	tables, err := filepath.Glob(filepath.Join(dir, "*.sst"))
	if err != nil || len(tables) == 0 {
		t.Fatalf("no tables after flush: %v %v", tables, err)
	}
	// Data blocks start at file offset 0; the checksum covers the whole
	// block, so any flipped bit inside it must trip verification. The
	// first read decodes from disk — the block cache holds nothing yet.
	if err := FlipBit(tables[0], 16, 3); err != nil {
		t.Fatal(err)
	}

	if _, err := db.Get([]byte("corrupt0000")); !errors.Is(err, lsm.ErrBadBlock) {
		t.Fatalf("corrupt-block Get returned %v, want ErrBadBlock", err)
	}
	if _, err := db.Has([]byte("corrupt0001")); !errors.Is(err, lsm.ErrBadBlock) {
		t.Fatalf("corrupt-block Has returned %v, want ErrBadBlock", err)
	}
	if _, _, err := db.MultiGet([][]byte{[]byte("corrupt0002")}); !errors.Is(err, lsm.ErrBadBlock) {
		t.Fatalf("corrupt-block MultiGet returned %v, want ErrBadBlock", err)
	}
	if got := db.Stats().BadBlocks; got != 3 {
		t.Fatalf("BadBlocks = %d, want 3", got)
	}
}
