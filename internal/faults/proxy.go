package faults

import (
	"io"
	"net"
	"sync"
)

// Proxy is a faultable TCP relay for cross-process drills: point a
// replica's -replicaof (or a bench client's -addr) at the proxy and the
// test process slows, stalls, or partitions the link mid-flight through
// the proxy's Injector — no root, no tc/netem, fully deterministic.
//
// Faults apply on the upstream (proxy→target) leg in both copy
// directions, so one Injector shapes the whole link.
type Proxy struct {
	ln     net.Listener
	target string
	inj    *Injector

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewProxy listens on listenAddr (e.g. "127.0.0.1:0") and relays every
// accepted connection to target through the fault seam.
func NewProxy(listenAddr, target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		ln:     ln,
		target: target,
		inj:    NewInjector(),
		conns:  make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Injector returns the link's fault controls.
func (p *Proxy) Injector() *Injector { return p.inj }

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		upstream, err := net.Dial("tcp", p.target)
		if err != nil {
			client.Close()
			continue
		}
		faulted := WrapConn(upstream, p.inj)
		if !p.track(client, faulted) {
			client.Close()
			faulted.Close()
			return
		}
		p.wg.Add(2)
		go p.pipe(faulted, client)
		go p.pipe(client, faulted)
	}
}

func (p *Proxy) track(conns ...net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	for _, c := range conns {
		p.conns[c] = struct{}{}
	}
	return true
}

// pipe copies src→dst until either side dies, then severs both so the
// peer's copy loop unblocks too.
func (p *Proxy) pipe(dst, src net.Conn) {
	defer p.wg.Done()
	io.Copy(dst, src) //nolint:errcheck // a dead link is the expected exit
	src.Close()
	dst.Close()
	p.mu.Lock()
	delete(p.conns, src)
	delete(p.conns, dst)
	p.mu.Unlock()
}

// DropConns severs all live relayed connections (a hard link flap)
// without stopping the proxy; new connections relay normally.
func (p *Proxy) DropConns() {
	p.mu.Lock()
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Close stops the proxy and severs every relayed connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.DropConns()
	p.inj.Heal() // unblock any stalled I/O so the pipes can exit
	p.wg.Wait()
	return err
}
