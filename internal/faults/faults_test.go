package faults

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"tierbase/internal/cache"
)

// tcpPair returns both ends of a loopback TCP connection.
func tcpPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ch := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			close(ch)
			return
		}
		ch <- c
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	server, ok := <-ch
	if !ok {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestConnPassthrough(t *testing.T) {
	a, b := tcpPair(t)
	fc := WrapConn(a, NewInjector())
	if _, err := fc.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := b.Read(buf); err != nil || string(buf) != "hello" {
		t.Fatalf("read %q, %v", buf, err)
	}
}

func TestStallBlocksAndHealUnblocks(t *testing.T) {
	a, b := tcpPair(t)
	inj := NewInjector()
	fc := WrapConn(a, inj)
	inj.StallReads(true)
	got := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := fc.Read(buf)
		got <- err
	}()
	// The read must be parked in the stall gate, not failing.
	deadline := time.Now().Add(2 * time.Second)
	for inj.StalledOps() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("read never entered the stall gate")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-got:
		t.Fatalf("stalled read returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := b.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	inj.Heal()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("healed read failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read still blocked after Heal")
	}
}

func TestCloseInterruptsStall(t *testing.T) {
	a, _ := tcpPair(t)
	inj := NewInjector()
	fc := WrapConn(a, inj)
	inj.StallWrites(true)
	got := make(chan error, 1)
	go func() {
		_, err := fc.Write([]byte("x"))
		got <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for inj.StalledOps() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("write never entered the stall gate")
		}
		time.Sleep(time.Millisecond)
	}
	fc.Close()
	select {
	case err := <-got:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("want net.ErrClosed, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write still blocked after Close")
	}
}

func TestResetAfterBytes(t *testing.T) {
	a, _ := tcpPair(t)
	inj := NewInjector()
	fc := WrapConn(a, inj)
	inj.ResetAfterBytes(4)
	if _, err := fc.Write([]byte("1234")); err != nil {
		t.Fatalf("write within budget: %v", err)
	}
	if _, err := fc.Write([]byte("5")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("want ErrInjectedReset, got %v", err)
	}
	// The reset closed the conn.
	if _, err := fc.Write([]byte("6")); err == nil {
		t.Fatal("write after reset succeeded")
	}
}

func TestByteRateSlowsWrites(t *testing.T) {
	a, b := tcpPair(t)
	inj := NewInjector()
	fc := WrapConn(a, inj)
	inj.SetByteRate(1 << 20) // 1 MiB/s
	go func() {
		buf := make([]byte, 32<<10)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	payload := make([]byte, 64<<10) // ~62ms at the cap
	if _, err := fc.Write(payload); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 30*time.Millisecond {
		t.Fatalf("rate cap not applied: 64KiB in %v", el)
	}
}

func TestProxyRelayAndPartition(t *testing.T) {
	// Echo server as the upstream target.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 256)
				for {
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					if _, err := c.Write(buf[:n]); err != nil {
						return
					}
				}
			}(c)
		}
	}()

	p, err := NewProxy("127.0.0.1:0", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	echo := func() error {
		if _, err := c.Write([]byte("ping")); err != nil {
			return err
		}
		buf := make([]byte, 4)
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		_, err := c.Read(buf)
		if err == nil && !bytes.Equal(buf, []byte("ping")) {
			t.Fatalf("echoed %q", buf)
		}
		return err
	}
	if err := echo(); err != nil {
		t.Fatalf("relay: %v", err)
	}
	p.Injector().Partition()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatalf("client-side write (partition blackholes, not errors): %v", err)
	}
	buf := make([]byte, 4)
	c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read succeeded across a partition")
	}
	p.Injector().Heal()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(buf); err != nil || !bytes.Equal(buf, []byte("ping")) {
		t.Fatalf("healed link did not deliver the buffered echo: %q, %v", buf, err)
	}
}

func TestProxyDropConns(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				buf := make([]byte, 64)
				for {
					if _, err := c.Read(buf); err != nil {
						c.Close()
						return
					}
				}
			}(c)
		}
	}()
	p, err := NewProxy("127.0.0.1:0", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	p.DropConns()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection survived DropConns")
	}
}

func TestStorageInjector(t *testing.T) {
	st := WrapStorage(cache.NewMapStorage())
	if err := st.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	st.FailNext(2)
	if err := st.Put("k", []byte("v2")); !errors.Is(err, ErrInjectedDisk) {
		t.Fatalf("failNext 1: %v", err)
	}
	if _, _, err := st.Get("k"); !errors.Is(err, ErrInjectedDisk) {
		t.Fatalf("failNext 2: %v", err)
	}
	if v, ok, err := st.Get("k"); err != nil || !ok || string(v) != "v" {
		t.Fatalf("after burst: %q %v %v", v, ok, err)
	}
	st.FailReads(true)
	if _, _, err := st.Get("k"); !errors.Is(err, ErrInjectedDisk) {
		t.Fatal("FailReads off on Get")
	}
	if err := st.Put("k2", []byte("w")); err != nil {
		t.Fatalf("FailReads must not fail writes: %v", err)
	}
	st.FailReads(false)
	st.FailWrites(true)
	if err := st.Delete("k2"); !errors.Is(err, ErrInjectedDisk) {
		t.Fatal("FailWrites off on Delete")
	}
	if err := st.FlushAll(); !errors.Is(err, ErrInjectedDisk) {
		t.Fatal("FailWrites off on FlushAll")
	}
	st.FailWrites(false)
	if err := st.FlushAll(); err != nil {
		t.Fatalf("FlushAll passthrough: %v", err)
	}
	if _, ok, err := st.Get("k"); err != nil || ok {
		t.Fatalf("key survived FlushAll: %v %v", ok, err)
	}
	if st.Ops() == 0 || st.Failures() != 5 {
		t.Fatalf("counters: ops=%d failures=%d", st.Ops(), st.Failures())
	}
}

// memWAL is a minimal wal.Appender for the WAL injector test.
type memWAL struct {
	appends int
	syncs   int
}

func (m *memWAL) Append(p []byte) error { m.appends++; return nil }
func (m *memWAL) Sync() error           { m.syncs++; return nil }
func (m *memWAL) Close() error          { return nil }

func TestWALInjector(t *testing.T) {
	inner := &memWAL{}
	w := WrapWAL(inner)
	if err := w.Append([]byte("rec")); err != nil {
		t.Fatal(err)
	}
	w.FailWrites(true)
	if err := w.Append([]byte("rec")); !errors.Is(err, ErrInjectedDisk) {
		t.Fatalf("append: %v", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrInjectedDisk) {
		t.Fatalf("sync: %v", err)
	}
	w.FailWrites(false)
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if inner.appends != 1 || inner.syncs != 1 {
		t.Fatalf("inner saw appends=%d syncs=%d", inner.appends, inner.syncs)
	}
}
