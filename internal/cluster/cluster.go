// Package cluster implements the coordinator of TierBase (paper §3):
// hash-slot sharding across data nodes, routing-table distribution to
// clients, heartbeat liveness tracking, and master failover by replica
// promotion. "Coordinators oversee the entire cluster, managing failovers
// and administering tenant resource allocation."
package cluster

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
	"time"
)

// NumSlots is the size of the hash-slot space (Redis Cluster uses 16384;
// a smaller space keeps routing tables compact at repro scale).
const NumSlots = 1024

// SlotFor maps a key to its hash slot.
func SlotFor(key string) int {
	return int(crc32.ChecksumIEEE([]byte(key)) % NumSlots)
}

// Role distinguishes masters from replicas.
type Role int

// Node roles.
const (
	RoleMaster Role = iota
	RoleReplica
)

// String names the role.
func (r Role) String() string {
	if r == RoleReplica {
		return "replica"
	}
	return "master"
}

// Node is one data node registration.
type Node struct {
	ID       string
	Addr     string
	Role     Role
	MasterID string // for replicas: whom they follow (node ID)
	// MasterAddr is the replica's master by address — what a data node
	// actually knows from its -replicaof flag before any IDs are
	// exchanged. Failover matches replicas to a dead master by either
	// MasterID or MasterAddr.
	MasterAddr string
	lastSeen   time.Time
	alive      bool
}

// RoutingTable maps slots to master node IDs; clients cache it and refresh
// on epoch change.
type RoutingTable struct {
	Epoch uint64
	Slots [NumSlots]string  // slot -> master node ID
	Addrs map[string]string // node ID -> address
}

// NodeFor returns the master node ID serving key.
func (rt *RoutingTable) NodeFor(key string) string { return rt.Slots[SlotFor(key)] }

// AddrFor returns the address serving key.
func (rt *RoutingTable) AddrFor(key string) string { return rt.Addrs[rt.NodeFor(key)] }

// GroupKeysByAddr buckets keys by the address of the master serving them,
// preserving input order within each bucket — the routing leg of the
// batch (MGET/MSET) fast path: a client splits one logical batch into one
// physical batch per shard engine. Keys with no owning node group under
// the empty address so callers can surface the routing hole.
func (rt *RoutingTable) GroupKeysByAddr(keys []string) map[string][]string {
	groups := make(map[string][]string)
	for _, k := range keys {
		addr := rt.AddrFor(k)
		groups[addr] = append(groups[addr], k)
	}
	return groups
}

// GroupPairsByAddr buckets key/value pairs by the address of the master
// serving them — the write-side twin of GroupKeysByAddr, so a routed
// MSET splits into one physical MSET per node without an intermediate
// key pass. Pairs with no owning node group under the empty address so
// callers can surface the routing hole.
func (rt *RoutingTable) GroupPairsByAddr(pairs map[string]string) map[string]map[string]string {
	groups := make(map[string]map[string]string)
	for k, v := range pairs {
		addr := rt.AddrFor(k)
		sub := groups[addr]
		if sub == nil {
			sub = make(map[string]string)
			groups[addr] = sub
		}
		sub[k] = v
	}
	return groups
}

// Coordinator tracks membership and owns the routing table.
type Coordinator struct {
	mu    sync.Mutex
	nodes map[string]*Node
	table RoutingTable
	// HeartbeatTimeout marks a node dead when exceeded (default 3s).
	HeartbeatTimeout time.Duration
	// Clock is injectable for tests.
	Clock func() time.Time

	failovers int64
}

// Coordinator errors.
var (
	ErrUnknownNode = errors.New("cluster: unknown node")
	ErrNoMasters   = errors.New("cluster: no master nodes registered")
	ErrNoReplica   = errors.New("cluster: no replica available for failover")
)

// NewCoordinator creates an empty coordinator.
func NewCoordinator() *Coordinator {
	return &Coordinator{
		nodes:            make(map[string]*Node),
		HeartbeatTimeout: 3 * time.Second,
		Clock:            time.Now,
	}
}

// Register adds (or re-adds) a node and rebalances slots across masters.
func (c *Coordinator) Register(n Node) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n.lastSeen = c.Clock()
	n.alive = true
	c.nodes[n.ID] = &n
	if n.Role == RoleMaster {
		c.rebalanceLocked()
	}
}

// Deregister removes a node (graceful shutdown). A draining master's
// slots are handed to its promoted replica when it has one — see
// DeregisterDetail.
func (c *Coordinator) Deregister(id string) {
	c.DeregisterDetail(id)
}

// DeregisterDetail removes a node and, when the node was a master with a
// live replica, performs the same handoff a failure would — the
// lowest-ID live replica is promoted, surviving replicas are re-pointed
// at it, and the table rebalances — except here it happens immediately,
// with the departing master still alive to finish streaming. Returns the
// handoff event (nil when the node was unknown, a replica, or a master
// with no replica) so a serving loop can push the role change to the
// promoted process.
func (c *Coordinator) DeregisterDetail(id string) *Failover {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[id]
	if !ok {
		return nil
	}
	delete(c.nodes, id)
	if n.Role != RoleMaster {
		return nil
	}
	ev := Failover{FailedID: id, FailedAddr: n.Addr}
	if promoted := c.promoteReplicaLocked(id, n.Addr); promoted != nil {
		ev.PromotedID = promoted.ID
		ev.PromotedAddr = promoted.Addr
	}
	c.rebalanceLocked()
	return &ev
}

// promoteReplicaLocked promotes the lowest-ID live replica of the master
// identified by (id, addr) and re-points its sibling replicas at the
// promotee. Returns nil when the master had no live replica.
func (c *Coordinator) promoteReplicaLocked(id, addr string) *Node {
	var candidates []string
	for rid, r := range c.nodes {
		if r.Role == RoleReplica && r.alive &&
			(r.MasterID == id || (r.MasterAddr != "" && r.MasterAddr == addr)) {
			candidates = append(candidates, rid)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	sort.Strings(candidates)
	promoted := c.nodes[candidates[0]]
	promoted.Role = RoleMaster
	promoted.MasterID = ""
	promoted.MasterAddr = ""
	for _, rid := range candidates[1:] {
		c.nodes[rid].MasterID = promoted.ID
		c.nodes[rid].MasterAddr = promoted.Addr
	}
	c.failovers++
	return promoted
}

// Heartbeat records liveness for a node.
func (c *Coordinator) Heartbeat(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[id]
	if !ok {
		return ErrUnknownNode
	}
	n.lastSeen = c.Clock()
	n.alive = true
	return nil
}

// rebalanceLocked spreads slots evenly across live masters, in node-ID
// order for determinism. Bumps the table epoch.
func (c *Coordinator) rebalanceLocked() {
	var masters []string
	for id, n := range c.nodes {
		if n.Role == RoleMaster && n.alive {
			masters = append(masters, id)
		}
	}
	sort.Strings(masters)
	c.table.Epoch++
	c.table.Addrs = make(map[string]string, len(c.nodes))
	for id, n := range c.nodes {
		c.table.Addrs[id] = n.Addr
	}
	if len(masters) == 0 {
		for i := range c.table.Slots {
			c.table.Slots[i] = ""
		}
		return
	}
	for i := range c.table.Slots {
		c.table.Slots[i] = masters[i%len(masters)]
	}
}

// Table returns a copy of the current routing table.
func (c *Coordinator) Table() RoutingTable {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := c.table
	cp.Addrs = make(map[string]string, len(c.table.Addrs))
	for k, v := range c.table.Addrs {
		cp.Addrs[k] = v
	}
	return cp
}

// Failover describes one master failure handled by CheckFailuresDetail.
// PromotedID/PromotedAddr are empty when the master had no live replica
// (its slots redistribute across the surviving masters).
type Failover struct {
	FailedID     string
	FailedAddr   string
	PromotedID   string
	PromotedAddr string
}

// CheckFailures scans heartbeats, promotes replicas of dead masters, and
// returns the IDs of masters failed over. Call periodically.
func (c *Coordinator) CheckFailures() []string {
	events := c.CheckFailuresDetail()
	ids := make([]string, 0, len(events))
	for _, ev := range events {
		ids = append(ids, ev.FailedID)
	}
	return ids
}

// CheckFailuresDetail scans heartbeats and handles dead masters:
// the lowest-ID live replica of each (matched by MasterID or
// MasterAddr) is promoted in the coordinator's state, surviving
// replicas of the dead master are re-pointed at the promotee, and the
// routing table rebalances. Returns one event per failed master so a
// serving loop can push role changes (REPLICAOF NO ONE) to the live
// processes.
func (c *Coordinator) CheckFailuresDetail() []Failover {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.Clock()
	var events []Failover
	changed := false
	for id, n := range c.nodes {
		if !n.alive || now.Sub(n.lastSeen) <= c.HeartbeatTimeout {
			continue
		}
		n.alive = false
		if n.Role != RoleMaster {
			continue
		}
		ev := Failover{FailedID: id, FailedAddr: n.Addr}
		// With no replica the master's slots redistribute on rebalance.
		if promoted := c.promoteReplicaLocked(id, n.Addr); promoted != nil {
			ev.PromotedID = promoted.ID
			ev.PromotedAddr = promoted.Addr
		}
		events = append(events, ev)
		changed = true
	}
	if changed {
		c.rebalanceLocked()
	}
	return events
}

// Failovers reports the number of promotions performed.
func (c *Coordinator) Failovers() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failovers
}

// Nodes returns a snapshot of the membership, sorted by ID.
func (c *Coordinator) Nodes() []Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, *n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Masters returns the live master IDs, sorted.
func (c *Coordinator) Masters() ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for id, n := range c.nodes {
		if n.Role == RoleMaster && n.alive {
			out = append(out, id)
		}
	}
	if len(out) == 0 {
		return nil, ErrNoMasters
	}
	sort.Strings(out)
	return out, nil
}

// String renders the routing table compactly.
func (rt *RoutingTable) String() string {
	counts := map[string]int{}
	for _, id := range rt.Slots {
		counts[id]++
	}
	ids := make([]string, 0, len(counts))
	for id := range counts {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	s := fmt.Sprintf("epoch=%d", rt.Epoch)
	for _, id := range ids {
		s += fmt.Sprintf(" %s:%d", id, counts[id])
	}
	return s
}
