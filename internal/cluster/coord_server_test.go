package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeNode is a minimal RESP listener that records the commands it
// receives (the promotion push) and answers +OK.
type fakeNode struct {
	ln   net.Listener
	mu   sync.Mutex
	cmds [][]string
}

func startFakeNode(t *testing.T) *fakeNode {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeNode{ln: ln}
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				br := bufio.NewReader(nc)
				for {
					args, err := readCommand(br)
					if err != nil {
						return
					}
					f.mu.Lock()
					f.cmds = append(f.cmds, args)
					f.mu.Unlock()
					if _, err := nc.Write([]byte("+OK\r\n")); err != nil {
						return
					}
				}
			}(nc)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return f
}

func (f *fakeNode) addr() string { return f.ln.Addr().String() }

func (f *fakeNode) commands() [][]string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([][]string, len(f.cmds))
	copy(out, f.cmds)
	return out
}

func TestCoordServerRegisterHeartbeatTable(t *testing.T) {
	coord := NewCoordinator()
	cs, err := StartCoordServer("127.0.0.1:0", coord, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()

	do := func(args ...string) string {
		t.Helper()
		reply, err := sendRESP(cs.Addr(), time.Second, args...)
		if err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		return reply
	}
	if got := do("PING"); got != "+PONG" {
		t.Fatalf("PING = %q", got)
	}
	if got := do("CLUSTER", "REGISTER", "m1", "127.0.0.1:7001", "master", "-"); got != "+OK" {
		t.Fatalf("REGISTER = %q", got)
	}
	if got := do("CLUSTER", "REGISTER", "r1", "127.0.0.1:7002", "replica", "127.0.0.1:7001"); got != "+OK" {
		t.Fatalf("REGISTER replica = %q", got)
	}
	if got := do("CLUSTER", "HEARTBEAT", "m1"); got != "+OK" {
		t.Fatalf("HEARTBEAT = %q", got)
	}
	if got := do("CLUSTER", "HEARTBEAT", "ghost"); !strings.HasPrefix(got, "-UNKNOWNNODE") {
		t.Fatalf("HEARTBEAT ghost = %q", got)
	}

	// TABLE returns the routing table as JSON (multi-line bulk: read via
	// a real conn instead of the single-line helper).
	nc, err := net.Dial("tcp", cs.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte("*2\r\n$7\r\nCLUSTER\r\n$5\r\nTABLE\r\n")); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(nc)
	hdr, err := br.ReadString('\n')
	if err != nil || !strings.HasPrefix(hdr, "$") {
		t.Fatalf("TABLE header %q err %v", hdr, err)
	}
	var n int
	if _, err := fmt.Sscanf(hdr, "$%d", &n); err != nil {
		t.Fatalf("TABLE header %q: %v", hdr, err)
	}
	blob := make([]byte, n+2)
	if _, err := io.ReadFull(br, blob); err != nil {
		t.Fatal(err)
	}
	var rt RoutingTable
	if err := json.Unmarshal(blob[:n], &rt); err != nil {
		t.Fatalf("table JSON: %v", err)
	}
	if rt.Epoch == 0 || rt.Addrs["m1"] != "127.0.0.1:7001" {
		t.Fatalf("table = %+v", rt)
	}
	if rt.NodeFor("anykey") != "m1" {
		t.Fatalf("slots not owned by m1: %s", rt.NodeFor("anykey"))
	}
}

func TestCoordServerFailoverPush(t *testing.T) {
	replica := startFakeNode(t)

	coord := NewCoordinator()
	coord.HeartbeatTimeout = 50 * time.Millisecond
	cs, err := StartCoordServer("127.0.0.1:0", coord, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	cs.Logf = t.Logf

	coord.Register(Node{ID: "m1", Addr: "127.0.0.1:1", Role: RoleMaster})
	coord.Register(Node{ID: "r1", Addr: replica.addr(), Role: RoleReplica, MasterAddr: "127.0.0.1:1"})

	// Keep the replica alive while the master goes silent.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		coord.Heartbeat("r1")
		promoted := false
		for _, cmds := range replica.commands() {
			if len(cmds) == 3 && strings.EqualFold(cmds[0], "REPLICAOF") &&
				strings.EqualFold(cmds[1], "NO") && strings.EqualFold(cmds[2], "ONE") {
				promoted = true
			}
		}
		if promoted {
			table := coord.Table()
			if table.NodeFor("k") != "r1" {
				t.Fatalf("routing table not repointed: %+v", table.Slots[SlotFor("k")])
			}
			if coord.Failovers() != 1 {
				t.Fatalf("failovers = %d", coord.Failovers())
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("replica never received REPLICAOF NO ONE")
}
