package cluster

import (
	"testing"
	"time"
)

func TestBackoffDoublesToMax(t *testing.T) {
	b := &Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Jitter: -1}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if d := b.Next(); d != w*time.Millisecond {
			t.Fatalf("Next %d = %v, want %v", i, d, w*time.Millisecond)
		}
	}
}

func TestBackoffReset(t *testing.T) {
	b := &Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Jitter: -1}
	b.Next()
	b.Next()
	if b.Current() == 0 {
		t.Fatal("no state after Next")
	}
	b.Reset()
	if b.Current() != 0 {
		t.Fatalf("Current after Reset = %v", b.Current())
	}
	if d := b.Next(); d != 10*time.Millisecond {
		t.Fatalf("Next after Reset = %v, want Base", d)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	b := &Backoff{Base: 100 * time.Millisecond, Max: time.Hour, Jitter: 0.5}
	d := b.Next()
	if d < 100*time.Millisecond || d >= 150*time.Millisecond {
		t.Fatalf("jittered first delay %v outside [100ms, 150ms)", d)
	}
}

func TestBackoffZeroValueDefaults(t *testing.T) {
	var b Backoff
	d := b.Next()
	if d < 50*time.Millisecond || d > 75*time.Millisecond {
		t.Fatalf("zero-value first delay %v outside [50ms, 75ms]", d)
	}
	for i := 0; i < 20; i++ {
		if d := b.Next(); d > 2*time.Second {
			t.Fatalf("delay %v exceeds default Max", d)
		}
	}
}
