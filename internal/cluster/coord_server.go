package cluster

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// CoordServer serves a Coordinator over RESP so live tierbase-server
// processes can register and heartbeat, clients can fetch the routing
// table, and a background failover loop can push promotions
// (`REPLICAOF NO ONE`) to the surviving processes.
//
// Commands:
//
//	PING
//	CLUSTER REGISTER <id> <addr> <master|replica> <masterAddr|->
//	CLUSTER HEARTBEAT <id>
//	CLUSTER DEREGISTER <id>
//	CLUSTER TABLE   -> bulk JSON of RoutingTable
//	CLUSTER EPOCH   -> :<epoch>
//	CLUSTER NODES   -> bulk text, one node per line
//
// This file speaks raw RESP on purpose: internal/client imports this
// package for RoutingTable, so the coordinator cannot import the client
// back.
type CoordServer struct {
	coord *Coordinator
	ln    net.Listener

	// CheckInterval is how often the failover loop scans heartbeats.
	checkInterval time.Duration

	// NotifyTimeout bounds each promotion push dial+reply.
	NotifyTimeout time.Duration

	// Logf receives coordinator events (promotions, notify failures);
	// defaults to log.Printf.
	Logf func(format string, args ...any)

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	stop   chan struct{}
	wg     sync.WaitGroup
	closed bool
}

// StartCoordServer listens on addr and starts the accept and failover
// loops. checkInterval <= 0 disables the failover loop (tests that step
// CheckFailuresDetail manually).
func StartCoordServer(addr string, coord *Coordinator, checkInterval time.Duration) (*CoordServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	cs := &CoordServer{
		coord:         coord,
		ln:            ln,
		checkInterval: checkInterval,
		NotifyTimeout: 2 * time.Second,
		Logf:          log.Printf,
		conns:         make(map[net.Conn]struct{}),
		stop:          make(chan struct{}),
	}
	cs.wg.Add(1)
	go cs.acceptLoop()
	if checkInterval > 0 {
		cs.wg.Add(1)
		go cs.failoverLoop()
	}
	return cs, nil
}

// Addr returns the bound listen address.
func (cs *CoordServer) Addr() string { return cs.ln.Addr().String() }

// Close stops the loops and closes every connection.
func (cs *CoordServer) Close() error {
	cs.mu.Lock()
	if cs.closed {
		cs.mu.Unlock()
		return nil
	}
	cs.closed = true
	close(cs.stop)
	for c := range cs.conns {
		c.Close()
	}
	cs.mu.Unlock()
	err := cs.ln.Close()
	cs.wg.Wait()
	return err
}

func (cs *CoordServer) acceptLoop() {
	defer cs.wg.Done()
	for {
		nc, err := cs.ln.Accept()
		if err != nil {
			return
		}
		cs.mu.Lock()
		if cs.closed {
			cs.mu.Unlock()
			nc.Close()
			return
		}
		cs.conns[nc] = struct{}{}
		cs.mu.Unlock()
		cs.wg.Add(1)
		go cs.serveConn(nc)
	}
}

func (cs *CoordServer) serveConn(nc net.Conn) {
	defer cs.wg.Done()
	defer func() {
		cs.mu.Lock()
		delete(cs.conns, nc)
		cs.mu.Unlock()
		nc.Close()
	}()
	br := bufio.NewReader(nc)
	bw := bufio.NewWriter(nc)
	for {
		args, err := readCommand(br)
		if err != nil {
			return
		}
		if len(args) == 0 {
			continue
		}
		cs.dispatch(bw, args)
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

func (cs *CoordServer) dispatch(bw *bufio.Writer, args []string) {
	switch strings.ToUpper(args[0]) {
	case "PING":
		writeSimple(bw, "PONG")
	case "CLUSTER":
		if len(args) < 2 {
			writeErr(bw, "ERR wrong number of arguments for CLUSTER")
			return
		}
		cs.cluster(bw, args[1:])
	default:
		writeErr(bw, "ERR unknown command '"+args[0]+"'")
	}
}

func (cs *CoordServer) cluster(bw *bufio.Writer, args []string) {
	switch strings.ToUpper(args[0]) {
	case "REGISTER":
		if len(args) != 5 {
			writeErr(bw, "ERR usage: CLUSTER REGISTER id addr role masterAddr|-")
			return
		}
		role := RoleMaster
		if strings.EqualFold(args[3], "replica") {
			role = RoleReplica
		}
		masterAddr := args[4]
		if masterAddr == "-" {
			masterAddr = ""
		}
		cs.coord.Register(Node{ID: args[1], Addr: args[2], Role: role, MasterAddr: masterAddr})
		writeSimple(bw, "OK")
	case "HEARTBEAT":
		if len(args) != 2 {
			writeErr(bw, "ERR usage: CLUSTER HEARTBEAT id")
			return
		}
		if err := cs.coord.Heartbeat(args[1]); err != nil {
			writeErr(bw, "UNKNOWNNODE "+args[1])
			return
		}
		writeSimple(bw, "OK")
	case "DEREGISTER":
		if len(args) != 2 {
			writeErr(bw, "ERR usage: CLUSTER DEREGISTER id")
			return
		}
		ev := cs.coord.DeregisterDetail(args[1])
		// Push the handoff promotion in the background: the draining
		// master is blocked on this +OK and must not wait for the
		// promotee's round-trip.
		if ev != nil && ev.PromotedAddr != "" {
			cs.Logf("cluster: master %s (%s) deregistered; promoting %s (%s)",
				ev.FailedID, ev.FailedAddr, ev.PromotedID, ev.PromotedAddr)
			cs.wg.Add(1)
			go func(ev Failover) {
				defer cs.wg.Done()
				cs.pushPromotion(ev)
			}(*ev)
		}
		writeSimple(bw, "OK")
	case "TABLE":
		table := cs.coord.Table()
		blob, err := json.Marshal(&table)
		if err != nil {
			writeErr(bw, "ERR encoding table: "+err.Error())
			return
		}
		writeBulk(bw, blob)
	case "EPOCH":
		table := cs.coord.Table()
		fmt.Fprintf(bw, ":%d\r\n", table.Epoch)
	case "NODES":
		var sb strings.Builder
		for _, n := range cs.coord.Nodes() {
			fmt.Fprintf(&sb, "%s %s %s master=%s\n", n.ID, n.Addr, n.Role, n.MasterID)
		}
		writeBulk(bw, []byte(sb.String()))
	default:
		writeErr(bw, "ERR unknown CLUSTER subcommand '"+args[0]+"'")
	}
}

// failoverLoop periodically scans heartbeats and pushes promotions to
// the affected processes: the chosen replica gets `REPLICAOF NO ONE`,
// re-pointed surviving replicas get `REPLICAOF <newMaster>`.
func (cs *CoordServer) failoverLoop() {
	defer cs.wg.Done()
	t := time.NewTicker(cs.checkInterval)
	defer t.Stop()
	for {
		select {
		case <-cs.stop:
			return
		case <-t.C:
		}
		events := cs.coord.CheckFailuresDetail()
		for _, ev := range events {
			if ev.PromotedAddr == "" {
				cs.Logf("cluster: master %s (%s) failed with no replica; slots redistributed", ev.FailedID, ev.FailedAddr)
				continue
			}
			cs.Logf("cluster: master %s (%s) failed; promoting %s (%s)", ev.FailedID, ev.FailedAddr, ev.PromotedID, ev.PromotedAddr)
			cs.pushPromotion(ev)
		}
	}
}

// pushPromotion tells the promoted process it is now a master
// (`REPLICAOF NO ONE`) and re-points that promotee's surviving replicas
// at it. Shared by the failover loop and the graceful-deregister path.
func (cs *CoordServer) pushPromotion(ev Failover) {
	if err := cs.notify(ev.PromotedAddr, "REPLICAOF", "NO", "ONE"); err != nil {
		cs.Logf("cluster: promotion notify %s: %v", ev.PromotedAddr, err)
	}
	host, port, splitErr := net.SplitHostPort(ev.PromotedAddr)
	if splitErr != nil {
		return
	}
	for _, n := range cs.coord.Nodes() {
		if n.Role == RoleReplica && n.MasterID == ev.PromotedID && n.ID != ev.PromotedID {
			if err := cs.notify(n.Addr, "REPLICAOF", host, port); err != nil {
				cs.Logf("cluster: re-point notify %s: %v", n.Addr, err)
			}
		}
	}
}

// notify dials addr, sends one RESP command and checks for a non-error
// reply, retrying a couple of times — promotion must survive a replica
// that is briefly busy tearing down its dead master link.
func (cs *CoordServer) notify(addr string, args ...string) error {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			select {
			case <-cs.stop:
				return lastErr
			case <-time.After(100 * time.Millisecond):
			}
		}
		reply, err := sendRESP(addr, cs.NotifyTimeout, args...)
		if err != nil {
			lastErr = err
			continue
		}
		if strings.HasPrefix(reply, "-") {
			lastErr = errors.New(strings.TrimPrefix(reply, "-"))
			continue
		}
		return nil
	}
	return lastErr
}

// sendRESP dials addr, writes one command as a RESP array of bulk
// strings and returns the raw first reply line (including the type
// byte). Deliberately tiny — this file cannot import internal/client.
func sendRESP(addr string, timeout time.Duration, args ...string) (string, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return "", err
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(timeout))
	var sb strings.Builder
	fmt.Fprintf(&sb, "*%d\r\n", len(args))
	for _, a := range args {
		fmt.Fprintf(&sb, "$%d\r\n%s\r\n", len(a), a)
	}
	if _, err := io.WriteString(nc, sb.String()); err != nil {
		return "", err
	}
	line, err := bufio.NewReader(nc).ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// --- minimal RESP command reader / reply writers ---

// readCommand parses one RESP array-of-bulk-strings command (inline
// commands are also accepted for debugging with netcat).
func readCommand(br *bufio.Reader) ([]string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return nil, err
	}
	line = strings.TrimRight(line, "\r\n")
	if line == "" {
		return nil, nil
	}
	if line[0] != '*' {
		return strings.Fields(line), nil // inline command
	}
	n, err := strconv.Atoi(line[1:])
	if err != nil || n < 0 || n > 1024 {
		return nil, fmt.Errorf("cluster: bad array header %q", line)
	}
	args := make([]string, 0, n)
	for i := 0; i < n; i++ {
		hdr, err := br.ReadString('\n')
		if err != nil {
			return nil, err
		}
		hdr = strings.TrimRight(hdr, "\r\n")
		if len(hdr) == 0 || hdr[0] != '$' {
			return nil, fmt.Errorf("cluster: bad bulk header %q", hdr)
		}
		l, err := strconv.Atoi(hdr[1:])
		if err != nil || l < 0 || l > 1<<20 {
			return nil, fmt.Errorf("cluster: bad bulk length %q", hdr)
		}
		buf := make([]byte, l+2)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		args = append(args, string(buf[:l]))
	}
	return args, nil
}

func writeSimple(bw *bufio.Writer, s string) {
	bw.WriteByte('+')
	bw.WriteString(s)
	bw.WriteString("\r\n")
}

func writeErr(bw *bufio.Writer, msg string) {
	bw.WriteByte('-')
	bw.WriteString(msg)
	bw.WriteString("\r\n")
}

func writeBulk(bw *bufio.Writer, b []byte) {
	fmt.Fprintf(bw, "$%d\r\n", len(b))
	bw.Write(b)
	bw.WriteString("\r\n")
}
