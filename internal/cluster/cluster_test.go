package cluster

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func TestSlotForStable(t *testing.T) {
	a := SlotFor("user000000000001")
	if a != SlotFor("user000000000001") {
		t.Fatal("slot not deterministic")
	}
	if a < 0 || a >= NumSlots {
		t.Fatalf("slot out of range: %d", a)
	}
}

func TestSlotDistributionProperty(t *testing.T) {
	f := func(keys []string) bool {
		for _, k := range keys {
			s := SlotFor(k)
			if s < 0 || s >= NumSlots {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Distribution sanity: many keys spread over many slots.
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		seen[SlotFor(fmt.Sprintf("key%08d", i))] = true
	}
	if len(seen) < NumSlots/2 {
		t.Fatalf("poor slot spread: %d/%d", len(seen), NumSlots)
	}
}

func newTestCoordinator(clock *time.Time) *Coordinator {
	c := NewCoordinator()
	c.Clock = func() time.Time { return *clock }
	c.HeartbeatTimeout = time.Second
	return c
}

func TestRegisterRebalances(t *testing.T) {
	now := time.Unix(0, 0)
	c := newTestCoordinator(&now)
	c.Register(Node{ID: "m1", Addr: "h1:1", Role: RoleMaster})
	rt := c.Table()
	for i := 0; i < NumSlots; i++ {
		if rt.Slots[i] != "m1" {
			t.Fatalf("slot %d unassigned", i)
		}
	}
	c.Register(Node{ID: "m2", Addr: "h2:1", Role: RoleMaster})
	rt2 := c.Table()
	if rt2.Epoch <= rt.Epoch {
		t.Fatal("epoch did not advance")
	}
	counts := map[string]int{}
	for _, id := range rt2.Slots {
		counts[id]++
	}
	if counts["m1"] != NumSlots/2 || counts["m2"] != NumSlots/2 {
		t.Fatalf("uneven split: %v", counts)
	}
	if rt2.AddrFor("anykey") == "" {
		t.Fatal("address lookup failed")
	}
}

func TestReplicaDoesNotOwnSlots(t *testing.T) {
	now := time.Unix(0, 0)
	c := newTestCoordinator(&now)
	c.Register(Node{ID: "m1", Role: RoleMaster})
	c.Register(Node{ID: "r1", Role: RoleReplica, MasterID: "m1"})
	rt := c.Table()
	for _, id := range rt.Slots {
		if id != "m1" {
			t.Fatalf("replica owns slot: %s", id)
		}
	}
}

func TestHeartbeatUnknownNode(t *testing.T) {
	now := time.Unix(0, 0)
	c := newTestCoordinator(&now)
	if err := c.Heartbeat("ghost"); err != ErrUnknownNode {
		t.Fatalf("want ErrUnknownNode, got %v", err)
	}
}

func TestFailoverPromotesReplica(t *testing.T) {
	now := time.Unix(0, 0)
	c := newTestCoordinator(&now)
	c.Register(Node{ID: "m1", Role: RoleMaster})
	c.Register(Node{ID: "r1", Role: RoleReplica, MasterID: "m1"})
	c.Register(Node{ID: "m2", Role: RoleMaster})

	// m1 stops heartbeating; r1 and m2 stay alive.
	now = now.Add(500 * time.Millisecond)
	c.Heartbeat("r1")
	c.Heartbeat("m2")
	now = now.Add(900 * time.Millisecond)
	failed := c.CheckFailures()
	if len(failed) != 1 || failed[0] != "m1" {
		t.Fatalf("failed: %v", failed)
	}
	if c.Failovers() != 1 {
		t.Fatalf("failovers %d", c.Failovers())
	}
	// r1 must now be a master owning slots.
	rt := c.Table()
	counts := map[string]int{}
	for _, id := range rt.Slots {
		counts[id]++
	}
	if counts["r1"] == 0 {
		t.Fatalf("promoted replica owns no slots: %v", counts)
	}
	if counts["m1"] != 0 {
		t.Fatalf("dead master still owns slots: %v", counts)
	}
}

func TestFailoverWithoutReplicaRedistributes(t *testing.T) {
	now := time.Unix(0, 0)
	c := newTestCoordinator(&now)
	c.Register(Node{ID: "m1", Role: RoleMaster})
	c.Register(Node{ID: "m2", Role: RoleMaster})
	now = now.Add(2 * time.Second)
	c.Heartbeat("m2")
	now = now.Add(time.Second)
	// m1 silent past timeout... wait: m2 heartbeat at t=2s, now=3s, timeout 1s —
	// m2 is exactly at the boundary; keep it alive with another beat.
	c.Heartbeat("m2")
	failed := c.CheckFailures()
	if len(failed) != 1 || failed[0] != "m1" {
		t.Fatalf("failed: %v", failed)
	}
	rt := c.Table()
	for i, id := range rt.Slots {
		if id != "m2" {
			t.Fatalf("slot %d owned by %q, want m2", i, id)
		}
	}
}

func TestNoFalseFailover(t *testing.T) {
	now := time.Unix(0, 0)
	c := newTestCoordinator(&now)
	c.Register(Node{ID: "m1", Role: RoleMaster})
	now = now.Add(500 * time.Millisecond)
	c.Heartbeat("m1")
	now = now.Add(800 * time.Millisecond)
	if failed := c.CheckFailures(); len(failed) != 0 {
		t.Fatalf("premature failover: %v", failed)
	}
}

func TestDeregister(t *testing.T) {
	now := time.Unix(0, 0)
	c := newTestCoordinator(&now)
	c.Register(Node{ID: "m1", Role: RoleMaster})
	c.Register(Node{ID: "m2", Role: RoleMaster})
	c.Deregister("m1")
	rt := c.Table()
	for _, id := range rt.Slots {
		if id != "m2" {
			t.Fatal("deregistered master still routed")
		}
	}
	c.Deregister("ghost") // no-op
	masters, err := c.Masters()
	if err != nil || len(masters) != 1 || masters[0] != "m2" {
		t.Fatalf("masters: %v %v", masters, err)
	}
}

// A draining master's slots hand off to its live replica immediately —
// the graceful-shutdown counterpart of the heartbeat-timeout failover.
func TestDeregisterHandsOffToReplica(t *testing.T) {
	now := time.Unix(0, 0)
	c := newTestCoordinator(&now)
	c.Register(Node{ID: "m1", Addr: "h1:1", Role: RoleMaster})
	c.Register(Node{ID: "r1", Addr: "h2:1", Role: RoleReplica, MasterAddr: "h1:1"})
	c.Register(Node{ID: "r2", Addr: "h3:1", Role: RoleReplica, MasterAddr: "h1:1"})

	ev := c.DeregisterDetail("m1")
	if ev == nil || ev.PromotedID != "r1" || ev.PromotedAddr != "h2:1" {
		t.Fatalf("handoff event = %+v, want r1 promoted", ev)
	}
	rt := c.Table()
	for i, id := range rt.Slots {
		if id != "r1" {
			t.Fatalf("slot %d owned by %q after handoff, want r1", i, id)
		}
	}
	// The sibling replica now follows the promotee.
	for _, n := range c.Nodes() {
		if n.ID == "r2" && (n.MasterID != "r1" || n.Role != RoleReplica) {
			t.Fatalf("r2 not re-pointed: %+v", n)
		}
	}
	if c.Failovers() != 1 {
		t.Fatalf("failovers = %d, want 1", c.Failovers())
	}

	// A master with no replica still deregisters cleanly: slots empty.
	ev = c.DeregisterDetail("r1")
	if ev == nil || ev.PromotedID != "r2" {
		t.Fatalf("second handoff = %+v, want r2 promoted", ev)
	}
	if ev2 := c.DeregisterDetail("r2"); ev2 == nil || ev2.PromotedID != "" {
		t.Fatalf("final deregister = %+v, want no promotee", ev2)
	}
	for i, id := range c.Table().Slots {
		if id != "" {
			t.Fatalf("slot %d still owned by %q after all masters drained", i, id)
		}
	}
}

func TestNoMasters(t *testing.T) {
	c := NewCoordinator()
	if _, err := c.Masters(); err != ErrNoMasters {
		t.Fatalf("want ErrNoMasters, got %v", err)
	}
}

func TestNodesSnapshot(t *testing.T) {
	now := time.Unix(0, 0)
	c := newTestCoordinator(&now)
	c.Register(Node{ID: "b", Role: RoleMaster})
	c.Register(Node{ID: "a", Role: RoleReplica, MasterID: "b"})
	nodes := c.Nodes()
	if len(nodes) != 2 || nodes[0].ID != "a" || nodes[1].ID != "b" {
		t.Fatalf("nodes: %v", nodes)
	}
	if RoleMaster.String() != "master" || RoleReplica.String() != "replica" {
		t.Fatal("role names")
	}
}

func TestTableStringAndIsolation(t *testing.T) {
	now := time.Unix(0, 0)
	c := newTestCoordinator(&now)
	c.Register(Node{ID: "m1", Addr: "x", Role: RoleMaster})
	rt := c.Table()
	if rt.String() == "" {
		t.Fatal("empty string")
	}
	// Mutating the copy must not affect the coordinator.
	rt.Addrs["m1"] = "hacked"
	if c.Table().Addrs["m1"] == "hacked" {
		t.Fatal("table copy leaked internal map")
	}
}

func TestGroupKeysByAddr(t *testing.T) {
	c := NewCoordinator()
	c.Register(Node{ID: "n1", Addr: "addr1", Role: RoleMaster})
	c.Register(Node{ID: "n2", Addr: "addr2", Role: RoleMaster})
	table := c.Table()

	keys := make([]string, 200)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%04d", i)
	}
	groups := table.GroupKeysByAddr(keys)
	if len(groups) != 2 {
		t.Fatalf("grouped into %d addrs, want 2", len(groups))
	}
	total := 0
	for addr, ks := range groups {
		total += len(ks)
		// Every key must group under the same address AddrFor reports.
		for _, k := range ks {
			if table.AddrFor(k) != addr {
				t.Fatalf("key %s grouped under %s but AddrFor says %s", k, addr, table.AddrFor(k))
			}
		}
	}
	if total != len(keys) {
		t.Fatalf("grouping lost keys: %d/%d", total, len(keys))
	}
	// Order within a bucket preserves input order.
	for _, ks := range groups {
		for i := 1; i < len(ks); i++ {
			if ks[i-1] >= ks[i] {
				t.Fatalf("bucket order not preserved: %s before %s", ks[i-1], ks[i])
			}
		}
	}
	// No-masters table groups everything under the empty address.
	empty := RoutingTable{}
	g := empty.GroupKeysByAddr([]string{"a", "b"})
	if len(g[""]) != 2 {
		t.Fatalf("routing hole grouping: %v", g)
	}
}

func TestGroupPairsByAddr(t *testing.T) {
	c := NewCoordinator()
	c.Register(Node{ID: "n1", Addr: "addr1", Role: RoleMaster})
	c.Register(Node{ID: "n2", Addr: "addr2", Role: RoleMaster})
	table := c.Table()

	pairs := make(map[string]string, 200)
	for i := 0; i < 200; i++ {
		pairs[fmt.Sprintf("key%04d", i)] = fmt.Sprintf("val%04d", i)
	}
	groups := table.GroupPairsByAddr(pairs)
	if len(groups) != 2 {
		t.Fatalf("grouped into %d addrs, want 2", len(groups))
	}
	total := 0
	for addr, sub := range groups {
		total += len(sub)
		// Every pair groups under the address AddrFor reports, value intact.
		for k, v := range sub {
			if table.AddrFor(k) != addr {
				t.Fatalf("key %s grouped under %s but AddrFor says %s", k, addr, table.AddrFor(k))
			}
			if pairs[k] != v {
				t.Fatalf("pair %s lost its value: %q != %q", k, v, pairs[k])
			}
		}
	}
	if total != len(pairs) {
		t.Fatalf("grouping lost pairs: %d/%d", total, len(pairs))
	}
	// No-masters table groups everything under the empty address so the
	// caller can surface the routing hole.
	empty := RoutingTable{}
	g := empty.GroupPairsByAddr(map[string]string{"a": "1", "b": "2"})
	if len(g[""]) != 2 {
		t.Fatalf("routing hole grouping: %v", g)
	}
}
