package cluster

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff computes jittered exponential retry delays. It replaces the
// tight retry loops found in PR 7's plumbing (the coordinator heartbeat
// re-registering every tick on -UNKNOWNNODE, the replica applier
// redialing a dead master on a fixed schedule): repeated failures space
// out exponentially up to Max, and the uniform jitter keeps a fleet of
// nodes that failed together from retrying in lockstep against the
// component that just came back.
//
// Safe for concurrent use; the zero value is usable with defaults.
type Backoff struct {
	// Base is the first delay (default 50ms).
	Base time.Duration
	// Max caps the delay growth (default 2s).
	Max time.Duration
	// Jitter is the uniform fraction added on top of the current delay:
	// next = delay * (1 + rand[0,Jitter)). Default 0.5; negative
	// disables jitter (deterministic tests).
	Jitter float64

	mu  sync.Mutex
	cur time.Duration
	rng *rand.Rand
}

func (b *Backoff) defaults() (time.Duration, time.Duration, float64) {
	base, max, jitter := b.Base, b.Max, b.Jitter
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	if jitter == 0 {
		jitter = 0.5
	}
	return base, max, jitter
}

// Next returns the delay to wait before the next retry and advances the
// exponential state.
func (b *Backoff) Next() time.Duration {
	base, max, jitter := b.defaults()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cur <= 0 {
		b.cur = base
	}
	d := b.cur
	b.cur *= 2
	if b.cur > max {
		b.cur = max
	}
	if jitter > 0 {
		if b.rng == nil {
			b.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
		}
		d += time.Duration(float64(d) * jitter * b.rng.Float64())
	}
	if d > max {
		d = max
	}
	return d
}

// Reset clears the exponential state after a success: the next failure
// starts again from Base.
func (b *Backoff) Reset() {
	b.mu.Lock()
	b.cur = 0
	b.mu.Unlock()
}

// Current reports how far the backoff has grown, as the next base delay
// (0 after Reset) — for tests and introspection.
func (b *Backoff) Current() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cur
}
