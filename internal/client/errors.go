package client

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Typed reply and transport errors. The cluster-aware client stack
// (Routed, NewCluster) dispatches on these with errors.As instead of
// string-matching reply text.

// MovedError is a server's permanent redirect: the key's hash slot is
// owned by another node (a replica rejecting a write, or a node that
// lost the slot after failover/resharding). Clients should refresh
// their routing table and retry against Addr.
type MovedError struct {
	Slot int
	Addr string
}

// Error renders the wire form.
func (e *MovedError) Error() string {
	return fmt.Sprintf("MOVED %d %s", e.Slot, e.Addr)
}

// AskError is a one-shot redirect during slot migration: retry this one
// operation against Addr without updating the routing table.
type AskError struct {
	Slot int
	Addr string
}

// Error renders the wire form.
func (e *AskError) Error() string {
	return fmt.Sprintf("ASK %d %s", e.Slot, e.Addr)
}

// ConnError wraps transport-level failures (dial errors, sticky broken
// connections, torn replies) so callers can distinguish "the node is
// unreachable — refresh routing and retry elsewhere" from a server
// rejecting the command. Unwrap exposes the cause.
type ConnError struct {
	Err error
}

// Error reports the cause.
func (e *ConnError) Error() string { return "client: connection failure: " + e.Err.Error() }

// Unwrap exposes the cause for errors.Is/As.
func (e *ConnError) Unwrap() error { return e.Err }

// OverloadedError is a server shedding writes at its memory high
// watermark (-OVERLOADED). The condition is retryable on the SAME node:
// the server keeps serving reads and recovers once memory drains below
// its low watermark, so the routed client backs off and retries in
// place instead of refreshing topology.
type OverloadedError struct {
	Msg string
}

// Error reports the server's message.
func (e *OverloadedError) Error() string { return e.Msg }

// MaxConnError is a server refusing a connection at its admission cap
// (-MAXCONN). Retryable after connections drain; unlike OverloadedError
// it arrives during the handshake, before any command ran.
type MaxConnError struct {
	Msg string
}

// Error reports the server's message.
func (e *MaxConnError) Error() string { return e.Msg }

// parseReplyError turns a RESP error line body (without the leading '-')
// into a typed error when it carries routing or overload semantics, or a
// plain error otherwise.
func parseReplyError(body string) error {
	if slot, addr, ok := parseRedirect(body, "MOVED "); ok {
		return &MovedError{Slot: slot, Addr: addr}
	}
	if slot, addr, ok := parseRedirect(body, "ASK "); ok {
		return &AskError{Slot: slot, Addr: addr}
	}
	if strings.HasPrefix(body, "OVERLOADED") {
		return &OverloadedError{Msg: body}
	}
	if strings.HasPrefix(body, "MAXCONN") {
		return &MaxConnError{Msg: body}
	}
	return errors.New(body)
}

func parseRedirect(body, prefix string) (slot int, addr string, ok bool) {
	if !strings.HasPrefix(body, prefix) {
		return 0, "", false
	}
	rest := strings.TrimPrefix(body, prefix)
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		return 0, "", false
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil {
		return 0, "", false
	}
	return n, fields[1], true
}

// isTransient reports whether err means "this node, or the path to it,
// failed" — the class of error a routed client answers by refreshing
// its table and retrying, rather than surfacing.
func isTransient(err error) bool {
	var ce *ConnError
	return errors.As(err, &ce)
}
