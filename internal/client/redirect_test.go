package client

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tierbase/internal/cluster"
)

func TestParseReplyErrorTyped(t *testing.T) {
	err := parseReplyError("MOVED 42 127.0.0.1:7002")
	var mv *MovedError
	if !errors.As(err, &mv) || mv.Slot != 42 || mv.Addr != "127.0.0.1:7002" {
		t.Fatalf("MOVED parse: %#v", err)
	}
	if err.Error() != "MOVED 42 127.0.0.1:7002" {
		t.Fatalf("MOVED text round trip: %q", err.Error())
	}

	err = parseReplyError("ASK 7 127.0.0.1:7003")
	var ask *AskError
	if !errors.As(err, &ask) || ask.Slot != 7 || ask.Addr != "127.0.0.1:7003" {
		t.Fatalf("ASK parse: %#v", err)
	}

	err = parseReplyError("ERR unknown command 'FOO'")
	if errors.As(err, &mv) || errors.As(err, &ask) {
		t.Fatalf("plain error misparsed as redirect: %#v", err)
	}
	if err.Error() != "ERR unknown command 'FOO'" {
		t.Fatalf("plain error text: %q", err.Error())
	}

	// Malformed redirects stay plain errors rather than panicking or
	// producing a bogus address.
	for _, s := range []string{"MOVED", "MOVED 42", "MOVED x y", "ASK 1 2 3"} {
		if e := parseReplyError(s); errors.As(e, &mv) || errors.As(e, &ask) {
			t.Fatalf("malformed %q parsed as redirect", s)
		}
	}
}

// fixedRouter routes every key to one address.
type fixedRouter struct{ addr string }

func (r fixedRouter) AddrFor(string) string { return r.addr }

// swapRouter routes every key to an atomically swappable address —
// a stand-in for a routing table that a refresh repoints.
type swapRouter struct{ addr atomic.Value }

func (r *swapRouter) AddrFor(string) string { return r.addr.Load().(string) }

// movedHook makes a stub answer -MOVED to target for any command that
// touches key k (SET/MSET/GET/MGET — coalesced shapes included).
func movedHook(k, target string) func(args []string) string {
	return redirectHook("MOVED", k, target)
}

func redirectHook(kind, k, target string) func(args []string) string {
	return func(args []string) string {
		for _, a := range args[1:] {
			if a == k {
				return fmt.Sprintf("-%s 42 %s\r\n", kind, target)
			}
		}
		return ""
	}
}

func TestRoutedFollowsMovedRedirect(t *testing.T) {
	owner := startStub(t)
	stale := startStub(t)
	stale.mu.Lock()
	stale.hook = movedHook("k", owner.addr())
	stale.mu.Unlock()

	rc := NewRouted(fixedRouter{addr: stale.addr()})
	defer rc.Close()

	if err := rc.Set("k", "v"); err != nil {
		t.Fatalf("Set through MOVED: %v", err)
	}
	owner.mu.Lock()
	got := owner.kv["k"]
	owner.mu.Unlock()
	if got != "v" {
		t.Fatalf("value did not land on redirect target: %q", got)
	}
	if v, err := rc.Get("k"); err != nil || v != "v" {
		t.Fatalf("Get through MOVED: %q %v", v, err)
	}
}

func TestRoutedMovedTriggersRefresh(t *testing.T) {
	owner := startStub(t)
	stale := startStub(t)
	stale.mu.Lock()
	stale.hook = movedHook("k", owner.addr())
	stale.mu.Unlock()

	router := &swapRouter{}
	router.addr.Store(stale.addr())
	rc := NewRouted(router)
	defer rc.Close()
	var refreshes atomic.Int32
	rc.refreshFn = func() error {
		refreshes.Add(1)
		router.addr.Store(owner.addr())
		return nil
	}

	if err := rc.Set("k", "v1"); err != nil {
		t.Fatalf("Set through MOVED: %v", err)
	}
	if n := refreshes.Load(); n != 1 {
		t.Fatalf("refreshes after MOVED = %d, want 1", n)
	}
	// The refreshed table now routes straight to the owner: no new MOVED,
	// no new refresh.
	if err := rc.Set("k", "v2"); err != nil {
		t.Fatal(err)
	}
	if n := refreshes.Load(); n != 1 {
		t.Fatalf("refreshes after rerouted Set = %d, want 1", n)
	}
	if got := len(stale.lastOf("SET")) + len(stale.lastOf("MSET")); got != 0 {
		// Only the first Set may have reached the stale node; the second
		// must not (it was rerouted). counts: stale saw exactly one write.
		c := stale.counts()
		if c["SET"]+c["MSET"] != 1 {
			t.Fatalf("stale node writes = %v, want exactly 1", c)
		}
	}
	owner.mu.Lock()
	got := owner.kv["k"]
	owner.mu.Unlock()
	if got != "v2" {
		t.Fatalf("owner value = %q", got)
	}
}

func TestRoutedAskDoesNotRefresh(t *testing.T) {
	owner := startStub(t)
	migrating := startStub(t)
	migrating.mu.Lock()
	migrating.hook = redirectHook("ASK", "k", owner.addr())
	migrating.mu.Unlock()

	rc := NewRouted(fixedRouter{addr: migrating.addr()})
	defer rc.Close()
	var refreshes atomic.Int32
	rc.refreshFn = func() error { refreshes.Add(1); return nil }

	if err := rc.Set("k", "v"); err != nil {
		t.Fatalf("Set through ASK: %v", err)
	}
	if n := refreshes.Load(); n != 0 {
		t.Fatalf("ASK must not refresh the table, got %d refreshes", n)
	}
	owner.mu.Lock()
	defer owner.mu.Unlock()
	if owner.kv["k"] != "v" {
		t.Fatalf("ASK target missed the write: %q", owner.kv["k"])
	}
}

func TestRoutedConnErrorRefreshesAndRetries(t *testing.T) {
	// A dead address (listener opened then closed so nothing answers).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	live := startStub(t)
	router := &swapRouter{}
	router.addr.Store(deadAddr)
	rc := NewRouted(router)
	defer rc.Close()
	rc.refreshFn = func() error {
		router.addr.Store(live.addr())
		return nil
	}

	if err := rc.Set("k", "v"); err != nil {
		t.Fatalf("Set should survive a dead node via refresh: %v", err)
	}
	live.mu.Lock()
	defer live.mu.Unlock()
	if live.kv["k"] != "v" {
		t.Fatalf("write did not land on refreshed node: %q", live.kv["k"])
	}
}

func TestRoutedSurfacesServerErrors(t *testing.T) {
	srv := startStub(t)
	rc := NewRouted(fixedRouter{addr: srv.addr()})
	defer rc.Close()
	var refreshes atomic.Int32
	rc.refreshFn = func() error { refreshes.Add(1); return nil }

	c, err := rc.clientFor("k")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do("BOOM"); err == nil || refreshes.Load() != 0 {
		t.Fatalf("plain server error must surface without refresh: %v %d", err, refreshes.Load())
	}
	// And through the routed retry loop: an error that is neither a
	// redirect nor transient returns immediately.
	start := time.Now()
	err = rc.doRouted("k", func(c *Client) error { return errors.New("WRONGTYPE") })
	if err == nil || !strings.Contains(err.Error(), "WRONGTYPE") {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("plain error should not burn the retry budget")
	}
	if refreshes.Load() != 0 {
		t.Fatal("plain error must not refresh")
	}
}

func TestNewClusterFetchesTableAndRoutes(t *testing.T) {
	node := startStub(t)
	coord := cluster.NewCoordinator()
	cs, err := cluster.StartCoordServer("127.0.0.1:0", coord, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	coord.Register(cluster.Node{ID: "n1", Addr: node.addr(), Role: cluster.RoleMaster})

	rc, err := NewCluster(cs.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	if err := rc.Set("k", "v"); err != nil {
		t.Fatal(err)
	}
	if v, err := rc.Get("k"); err != nil || v != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}

	// A manual Refresh against the live coordinator succeeds and keeps
	// routing intact.
	if err := rc.Refresh(); err != nil {
		t.Fatal(err)
	}
	if v, err := rc.Get("k"); err != nil || v != "v" {
		t.Fatalf("Get after refresh = %q, %v", v, err)
	}
}

// TestRoutedRedirectStormCollapsesRefreshes: many concurrent MOVED
// replies trigger at most a couple of refreshes thanks to rate limiting.
func TestRoutedRedirectStormCollapsesRefreshes(t *testing.T) {
	owner := startStub(t)
	stale := startStub(t)
	stale.mu.Lock()
	stale.hook = func(args []string) string {
		switch strings.ToUpper(args[0]) {
		case "SET", "MSET":
			return "-MOVED 42 " + owner.addr() + "\r\n"
		}
		return ""
	}
	stale.mu.Unlock()

	rc := NewRouted(fixedRouter{addr: stale.addr()})
	defer rc.Close()
	var refreshes atomic.Int32
	rc.refreshFn = func() error { refreshes.Add(1); return nil }

	const K = 32
	var wg sync.WaitGroup
	errs := make(chan error, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- rc.Set(fmt.Sprintf("k%02d", i), "v")
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if n := refreshes.Load(); n > 4 {
		t.Fatalf("redirect storm caused %d refreshes, want <= 4", n)
	}
}
