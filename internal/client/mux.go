package client

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// ErrClosed is the sticky error installed by Close: calls made after (or
// racing) Close fail with it instead of hanging on a dead connection.
var ErrClosed = errors.New("client: closed")

// callKind classifies a queued call for drain-window coalescing.
type callKind uint8

const (
	kindOther callKind = iota // written verbatim
	kindGet                   // typed Get: always rides the window's MGET
	kindSet                   // typed Set: may fold into an MSET
)

// call is one caller-visible request — one or more commands plus the
// rendezvous the caller blocks on. Pipeline enqueues one call carrying N
// commands so its internal order survives the mux untouched.
type call struct {
	kind    callKind
	cmds    [][]string
	replies []interface{}
	errs    []error
	left    int32 // undelivered replies; done closes at zero
	done    chan struct{}
}

func newCall(kind callKind, cmds [][]string) *call {
	return &call{
		kind:    kind,
		cmds:    cmds,
		replies: make([]interface{}, len(cmds)),
		errs:    make([]error, len(cmds)),
		left:    int32(len(cmds)),
		done:    make(chan struct{}),
	}
}

// deliver hands reply i to the waiter; the last delivery releases it.
func (cl *call) deliver(i int, v interface{}, err error) {
	cl.replies[i] = v
	cl.errs[i] = err
	if atomic.AddInt32(&cl.left, -1) == 0 {
		close(cl.done)
	}
}

// failAll fails a call none of whose replies have been delivered (it never
// reached the wire).
func (cl *call) failAll(err error) {
	for i := range cl.cmds {
		cl.deliver(i, nil, err)
	}
}

// slot is one expected wire reply, in stream order: either one command of
// one call, or a coalesced MGET/MSET answering a whole batch of
// single-key calls at once.
type slot struct {
	c     *call
	idx   int
	batch []*call // non-nil: coalesced batch; mget says which flavor
	mget  bool
}

// deliverReply routes one in-protocol reply to its waiter(s), demuxing a
// coalesced MGET array per key and fanning a coalesced MSET's +OK out to
// every folded Set.
func (s *slot) deliverReply(v interface{}, replyErr error) {
	if s.batch == nil {
		s.c.deliver(s.idx, v, replyErr)
		return
	}
	if !s.mget {
		for _, cl := range s.batch {
			cl.deliver(0, v, replyErr)
		}
		return
	}
	if replyErr != nil {
		for _, cl := range s.batch {
			cl.deliver(0, nil, replyErr)
		}
		return
	}
	arr, ok := v.([]interface{})
	if !ok || len(arr) != len(s.batch) {
		err := fmt.Errorf("client: MGET demux: unexpected reply %T (want %d elements)", v, len(s.batch))
		for _, cl := range s.batch {
			cl.deliver(0, nil, err)
		}
		return
	}
	for i, cl := range s.batch {
		if arr[i] == nil {
			cl.deliver(0, nil, Nil) // absent key: same shape as a plain GET
		} else {
			cl.deliver(0, arr[i], nil)
		}
	}
}

// fail fails every waiter still owed a reply through this slot.
func (s *slot) fail(err error) {
	if s.batch != nil {
		for _, cl := range s.batch {
			cl.deliver(0, nil, err)
		}
		return
	}
	s.c.deliver(s.idx, nil, err)
}

// MuxStats counts the multiplexer's work since Dial.
type MuxStats struct {
	Requests      int64 // commands enqueued by callers
	WireCommands  int64 // commands written to the socket (post-coalescing)
	Flushes       int64 // drain windows flushed (≈ write syscalls)
	CoalescedGets int64 // GETs folded into MGETs
	CoalescedSets int64 // SETs folded into MSETs
}

// Client is a multiplexed single-connection RESP client, safe for any
// number of concurrent callers. Callers enqueue requests; a writer
// goroutine drains everything pending in one buffered write + flush (the
// drain window: one syscall and one shared round trip however many
// callers landed in it), and a reader goroutine matches in-order replies
// back to per-call waiters. Single-key GETs (resp. SETs) sharing a window
// coalesce into one MGET (resp. MSET) with per-key demux of the reply.
// Connection-level errors are sticky: every in-flight and later call
// fails with the first error until a new client is dialed.
type Client struct {
	conn net.Conn
	r    *bufio.Reader // reader goroutine only
	w    *bufio.Writer // writer goroutine only

	mu       sync.Mutex
	err      error   // sticky: first connection-level failure
	pending  []*call // enqueued, not yet drained by the writer
	inflight []*slot // written, in stream order, awaiting replies

	writerWake chan struct{} // cap 1: nudge writer after enqueue
	readerWake chan struct{} // cap 1: nudge reader after inflight append
	closeOnce  sync.Once
	closeErr   error

	requests      atomic.Int64
	wireCommands  atomic.Int64
	flushes       atomic.Int64
	coalescedGets atomic.Int64
	coalescedSets atomic.Int64

	testGate chan struct{} // tests only: writer blocks here before each drain
}

// newClient wraps an established connection in the mux and starts its
// writer and reader goroutines.
func newClient(conn net.Conn) *Client {
	c := &Client{
		conn:       conn,
		r:          bufio.NewReaderSize(conn, 64<<10),
		w:          bufio.NewWriterSize(conn, 64<<10),
		writerWake: make(chan struct{}, 1),
		readerWake: make(chan struct{}, 1),
	}
	go c.writeLoop()
	go c.readLoop()
	return c
}

// Err reports the sticky connection error (nil while healthy). Once set
// the client is permanently broken; re-Dial to recover.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Stats returns a snapshot of the mux counters.
func (c *Client) Stats() MuxStats {
	return MuxStats{
		Requests:      c.requests.Load(),
		WireCommands:  c.wireCommands.Load(),
		Flushes:       c.flushes.Load(),
		CoalescedGets: c.coalescedGets.Load(),
		CoalescedSets: c.coalescedSets.Load(),
	}
}

// enqueue adds a call to the pending queue and nudges the writer. It
// fails fast with the sticky error on a broken client.
func (c *Client) enqueue(cl *call) error {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.pending = append(c.pending, cl)
	c.mu.Unlock()
	c.requests.Add(int64(len(cl.cmds)))
	select {
	case c.writerWake <- struct{}{}:
	default:
	}
	return nil
}

// writeLoop drains the pending queue: every request enqueued while the
// previous flush was on the wire goes out in one buffered write + flush.
func (c *Client) writeLoop() {
	for {
		<-c.writerWake
		c.mu.Lock()
		gate := c.testGate
		c.mu.Unlock()
		if gate != nil {
			<-gate
		}
		// One yield between wake and drain: callers that were released by
		// the reply burst currently being demuxed get to enqueue before
		// the window closes, growing it substantially under concurrency
		// for the cost of one scheduler pass (a single yield, not a spin
		// loop — safe at GOMAXPROCS=1).
		runtime.Gosched()
		c.mu.Lock()
		if c.err != nil {
			c.mu.Unlock()
			return
		}
		batch := c.pending
		c.pending = nil
		c.mu.Unlock()
		if len(batch) == 0 {
			continue
		}
		if err := c.flushWindow(batch); err != nil {
			c.fail(err)
			return
		}
	}
}

// flushWindow turns one drain window into wire commands + reply slots:
// non-coalescible calls ship verbatim in FIFO order, then all the
// window's typed Gets fold into one MGET and its typed Sets into one
// MSET (a lone Set ships verbatim — SET and MSET replies are
// indistinguishable, so rewriting it buys nothing). Slots are queued to
// the reader before the bytes go out so stream order and slot order
// always agree.
func (c *Client) flushWindow(batch []*call) error {
	var slots []*slot
	var wire [][]string
	var gets, sets []*call
	for _, cl := range batch {
		switch cl.kind {
		case kindGet:
			gets = append(gets, cl)
		case kindSet:
			sets = append(sets, cl)
		default:
			for i := range cl.cmds {
				slots = append(slots, &slot{c: cl, idx: i})
				wire = append(wire, cl.cmds[i])
			}
		}
	}
	if len(sets) == 1 {
		slots = append(slots, &slot{c: sets[0]})
		wire = append(wire, sets[0].cmds[0])
	}
	if len(gets) >= 1 {
		// Even a lone typed Get ships as a one-key MGET so Get's
		// semantics are MGET's deterministically — a wrong-type key
		// always reads as Nil, never an error-or-Nil coin flip decided
		// by whether other Gets shared the window.
		cmd := make([]string, 1, 1+len(gets))
		cmd[0] = "MGET"
		for _, cl := range gets {
			cmd = append(cmd, cl.cmds[0][1])
		}
		slots = append(slots, &slot{batch: gets, mget: true})
		wire = append(wire, cmd)
		if len(gets) >= 2 {
			c.coalescedGets.Add(int64(len(gets)))
		}
	}
	if len(sets) >= 2 {
		cmd := make([]string, 1, 1+2*len(sets))
		cmd[0] = "MSET"
		for _, cl := range sets {
			cmd = append(cmd, cl.cmds[0][1], cl.cmds[0][2])
		}
		slots = append(slots, &slot{batch: sets})
		wire = append(wire, cmd)
		c.coalescedSets.Add(int64(len(sets)))
	}

	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		for _, cl := range batch {
			cl.failAll(err)
		}
		return err
	}
	c.inflight = append(c.inflight, slots...)
	c.mu.Unlock()
	select {
	case c.readerWake <- struct{}{}:
	default:
	}
	for _, args := range wire {
		if err := writeCommand(c.w, args); err != nil {
			return err
		}
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	c.wireCommands.Add(int64(len(wire)))
	c.flushes.Add(1)
	return nil
}

// readLoop pairs in-order RESP replies with the in-order slot queue and
// releases waiters; a connection-level read error fails everything.
func (c *Client) readLoop() {
	for {
		c.mu.Lock()
		for len(c.inflight) == 0 {
			if c.err != nil {
				c.mu.Unlock()
				return
			}
			c.mu.Unlock()
			<-c.readerWake
			c.mu.Lock()
		}
		s := c.inflight[0]
		c.inflight[0] = nil // release the slot to GC under head-creep
		c.inflight = c.inflight[1:]
		c.mu.Unlock()
		v, replyErr, ioErr := readReply(c.r)
		if ioErr != nil {
			c.fail(ioErr)
			s.fail(c.Err())
			return
		}
		s.deliverReply(v, replyErr)
	}
}

// fail installs the sticky error (first failure wins), closes the socket,
// and releases every waiter — pending and in-flight — with the sticky
// error. A possibly-desynced stream is never reused: all later calls fail
// fast until the caller re-dials.
func (c *Client) fail(cause error) {
	// Transport-level failures become typed ConnErrors so routed callers
	// can classify them (refresh + retry); an explicit Close stays
	// ErrClosed.
	if cause != ErrClosed {
		var ce *ConnError
		if !errors.As(cause, &ce) {
			cause = &ConnError{Err: cause}
		}
	}
	c.mu.Lock()
	if c.err == nil {
		c.err = cause
	}
	sticky := c.err
	pending := c.pending
	inflight := c.inflight
	c.pending, c.inflight = nil, nil
	c.mu.Unlock()
	c.closeOnce.Do(func() { c.closeErr = c.conn.Close() })
	select {
	case c.writerWake <- struct{}{}:
	default:
	}
	select {
	case c.readerWake <- struct{}{}:
	default:
	}
	for _, cl := range pending {
		cl.failAll(sticky)
	}
	for _, s := range inflight {
		s.fail(sticky)
	}
}

// --- wire format ---

func writeCommand(w *bufio.Writer, args []string) error {
	if _, err := fmt.Fprintf(w, "*%d\r\n", len(args)); err != nil {
		return err
	}
	for _, a := range args {
		if _, err := fmt.Fprintf(w, "$%d\r\n%s\r\n", len(a), a); err != nil {
			return err
		}
	}
	return nil
}

// readReply reads one RESP reply. replyErr carries in-protocol outcomes
// (Nil, server errors) after a complete, well-formed reply was consumed;
// ioErr means the stream is broken or desynced and the connection must
// die. Error elements inside an array surface as a replyErr for the whole
// array, but the remaining elements are still consumed so the stream
// stays in sync.
func readReply(r *bufio.Reader) (v interface{}, replyErr, ioErr error) {
	line, err := r.ReadBytes('\n')
	if err != nil {
		return nil, nil, err
	}
	if len(line) < 3 {
		return nil, nil, errors.New("client: malformed reply")
	}
	body := string(line[1 : len(line)-2])
	switch line[0] {
	case '+':
		return body, nil, nil
	case '-':
		return nil, parseReplyError(body), nil
	case ':':
		n, err := strconv.ParseInt(body, 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("client: bad integer reply: %w", err)
		}
		return n, nil, nil
	case '$':
		n, err := strconv.Atoi(body)
		if err != nil {
			return nil, nil, fmt.Errorf("client: bad bulk header: %w", err)
		}
		if n < 0 {
			return nil, Nil, nil
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, nil, err
		}
		return string(buf[:n]), nil, nil
	case '*':
		n, err := strconv.Atoi(body)
		if err != nil {
			return nil, nil, fmt.Errorf("client: bad array header: %w", err)
		}
		if n < 0 {
			return nil, Nil, nil
		}
		out := make([]interface{}, n)
		var firstErr error
		for i := 0; i < n; i++ {
			ev, eErr, eIO := readReply(r)
			switch {
			case eIO != nil:
				return nil, nil, eIO
			case eErr == Nil:
				out[i] = nil
			case eErr != nil:
				if firstErr == nil {
					firstErr = eErr
				}
			default:
				out[i] = ev
			}
		}
		if firstErr != nil {
			return nil, firstErr, nil
		}
		return out, nil, nil
	default:
		return nil, nil, fmt.Errorf("client: unknown reply type %q", line[0])
	}
}
