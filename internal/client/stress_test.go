package client_test

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tierbase/internal/client"
	"tierbase/internal/server"
)

// TestMuxStress hammers one multiplexed connection from many goroutines
// mixing Get/Set/Do/Pipeline/MGet against a live server. Every value is
// derived from its key, so any cross-matched reply (a reply delivered to
// the wrong waiter) trips an identity assert. Runs under -race in CI,
// including the GOMAXPROCS=1 leg below (the PR 1 spin-wait regression
// class: a mux that busy-waits instead of blocking would wedge there).
func TestMuxStress(t *testing.T) {
	t.Run("default", muxStress)
	t.Run("gomaxprocs1", func(t *testing.T) {
		old := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(old)
		muxStress(t)
	})
}

func stressVal(k string) string { return "val-of-" + k }

func muxStress(t *testing.T) {
	s, err := server.Start(server.Options{Addr: "127.0.0.1:0", Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := client.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const keys = 64
	key := func(i int) string { return fmt.Sprintf("stress%03d", i%keys) }
	pairs := make(map[string]string, keys)
	for i := 0; i < keys; i++ {
		pairs[key(i)] = stressVal(key(i))
	}
	if err := c.MSet(pairs); err != nil {
		t.Fatal(err)
	}

	const goroutines = 24
	ops := 200
	if testing.Short() {
		ops = 40
	}
	var wg sync.WaitGroup
	var failures atomic.Int64
	fail := func(format string, args ...interface{}) {
		if failures.Add(1) <= 5 {
			t.Errorf(format, args...)
		}
	}
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				k := key(g*31 + i)
				switch i % 5 {
				case 0: // typed Get: identity
					v, err := c.Get(k)
					if err != nil || v != stressVal(k) {
						fail("Get(%s) = %q, %v", k, v, err)
					}
				case 1: // typed Set: always the key-derived value
					if err := c.Set(k, stressVal(k)); err != nil {
						fail("Set(%s): %v", k, err)
					}
				case 2: // raw Do GET: rides the same coalescing path
					v, err := c.Do("GET", k)
					if err != nil || v != stressVal(k) {
						fail("Do GET %s = %v, %v", k, v, err)
					}
				case 3: // pipeline: order within the call must hold
					k2 := key(g*31 + i + 7)
					outs, errs := c.Pipeline([][]string{
						{"SET", k, stressVal(k)},
						{"GET", k},
						{"GET", k2},
					})
					if errs[0] != nil || outs[0] != "OK" {
						fail("pipe SET %s: %v %v", k, outs[0], errs[0])
					}
					if errs[1] != nil || outs[1] != stressVal(k) {
						fail("pipe GET %s = %v, %v", k, outs[1], errs[1])
					}
					if errs[2] != nil || outs[2] != stressVal(k2) {
						fail("pipe GET %s = %v, %v", k2, outs[2], errs[2])
					}
				case 4: // explicit MGet batch
					k2 := key(g*31 + i + 13)
					got, err := c.MGet(k, k2)
					if err != nil || got[k] != stressVal(k) || got[k2] != stressVal(k2) {
						fail("MGet(%s,%s) = %v, %v", k, k2, got, err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d identity failures", n)
	}
	st := c.Stats()
	if st.Requests == 0 || st.Flushes == 0 || st.WireCommands == 0 {
		t.Fatalf("stats not counting: %+v", st)
	}
	if st.WireCommands > st.Requests {
		t.Fatalf("coalescing increased wire commands: %+v", st)
	}
}

// TestCloseRacesInflightCalls: Close fired while calls are mid-flight
// must release every waiter promptly — value or error, never a hang.
func TestCloseRacesInflightCalls(t *testing.T) {
	s, err := server.Start(server.Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for round := 0; round < 5; round++ {
		c, err := client.Dial(s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Set("race", "v"); err != nil {
			t.Fatal(err)
		}
		const goroutines = 16
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					v, err := c.Get("race")
					if err != nil {
						if !errors.Is(err, client.ErrClosed) && c.Err() == nil {
							t.Errorf("unexpected error with healthy client: %v", err)
						}
						return
					}
					if v != "v" {
						t.Errorf("Get(race) = %q", v)
						return
					}
				}
			}()
		}
		time.Sleep(2 * time.Millisecond)
		c.Close()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("waiters hung after Close")
		}
	}
}

// TestRoutedSlowNodeDoesNotBlockHealthyRouting: one node's dial hanging
// (simulated by a blackhole address that never accepts) must not stall
// callers routed to a healthy node — the satellite fix for dialing under
// the routing lock.
func TestRoutedSlowNodeDoesNotBlockHealthyRouting(t *testing.T) {
	s, err := server.Start(server.Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	r := &splitRouter{healthy: s.Addr(), dead: "10.255.255.1:6380"} // non-routable: dial hangs until timeout
	rc := client.NewRouted(r)
	defer rc.Close()

	dead := make(chan error, 1)
	go func() { dead <- rc.Set("dead-key", "v") }()

	// While the dead dial is pending, healthy-node traffic must complete
	// far faster than the 5s dial timeout.
	time.Sleep(10 * time.Millisecond)
	start := time.Now()
	if err := rc.Set("ok-key", "v"); err != nil {
		t.Fatalf("healthy set: %v", err)
	}
	if v, err := rc.Get("ok-key"); err != nil || v != "v" {
		t.Fatalf("healthy get: %q %v", v, err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("healthy routing blocked %v behind a dead node's dial", d)
	}
	select {
	case err := <-dead:
		if err == nil {
			t.Fatal("dial to blackhole unexpectedly succeeded")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("dead-node dial never returned")
	}
}

// splitRouter sends one key to a dead address and everything else to the
// healthy node.
type splitRouter struct{ healthy, dead string }

func (r *splitRouter) AddrFor(key string) string {
	if key == "dead-key" {
		return r.dead
	}
	return r.healthy
}

// TestRoutedRedialsBrokenNode: a node connection that went sticky-broken
// is replaced on the next call instead of failing forever.
func TestRoutedRedialsBrokenNode(t *testing.T) {
	s, err := server.Start(server.Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	addr := s.Addr()
	rc := client.NewRouted(singleRouter(addr))
	defer rc.Close()

	if err := rc.Set("k", "v1"); err != nil {
		t.Fatal(err)
	}
	// Kill the server; the node conn goes sticky-broken on next use.
	s.Close()
	if err := rc.Set("k", "v2"); err == nil {
		t.Fatal("set against a dead server should fail")
	}
	// Restart on the same address (may need a few tries on a busy box).
	var s2 *server.Server
	for i := 0; i < 50; i++ {
		s2, err = server.Start(server.Options{Addr: addr})
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer s2.Close()
	// The routed client must discard the broken mux and redial.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err = rc.Set("k", "v3"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("routed client never recovered: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if v, err := rc.Get("k"); err != nil || v != "v3" {
		t.Fatalf("after redial: %q %v", v, err)
	}
}

type singleRouter string

func (r singleRouter) AddrFor(string) string { return string(r) }
