// Package client is the Go client for TierBase's RESP protocol (the
// client tier of paper §3). It speaks RESP2 over TCP through a
// multiplexed connection core: any number of goroutines share one
// connection, concurrent requests drain to the wire in one buffered
// write + flush per window, and same-window single-key GETs/SETs
// auto-coalesce into MGET/MSET — the paper's access-path batching moved
// client-side. Typed helpers sit over the raw Do interface, and a routed
// variant consults a cluster routing table to reach the right shard
// process with one multiplexed connection per node. See README.md for
// the mux architecture and error model.
package client

import (
	"errors"
	"fmt"
	"net"
	"time"
)

// Nil is returned for absent keys (RESP nil bulk).
var Nil = errors.New("client: nil reply")

// Dial connects to a TierBase (or Redis) server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, &ConnError{Err: fmt.Errorf("dial %s: %w", addr, err)}
	}
	return newClient(conn), nil
}

// Close releases the connection. In-flight calls fail with ErrClosed
// rather than waiting on replies that may never come.
func (c *Client) Close() error {
	c.fail(ErrClosed)
	return c.closeErr
}

// Do sends one command and reads its reply. Do never coalesces: the
// command ships verbatim (sharing the drain window's flush), so raw
// single-command semantics — including error replies like WRONGTYPE —
// are exactly the server's.
// Reply types: string (simple/bulk), int64, []interface{}, Nil error.
func (c *Client) Do(args ...string) (interface{}, error) {
	return c.doKind(kindOther, args)
}

func (c *Client) doKind(kind callKind, args []string) (interface{}, error) {
	cl := newCall(kind, [][]string{args})
	if err := c.enqueue(cl); err != nil {
		return nil, err
	}
	<-cl.done
	return cl.replies[0], cl.errs[0]
}

// Pipeline sends multiple commands in one round trip and returns their
// replies in order. The commands ship verbatim back to back (no
// coalescing inside a pipeline), sharing the drain window — and hence
// the flush — with whatever else is in flight.
func (c *Client) Pipeline(cmds [][]string) ([]interface{}, []error) {
	if len(cmds) == 0 {
		return []interface{}{}, []error{}
	}
	cl := newCall(kindOther, cmds)
	if err := c.enqueue(cl); err != nil {
		outs := make([]interface{}, len(cmds))
		errs := make([]error, len(cmds))
		for i := range errs {
			errs[i] = err
		}
		return outs, errs
	}
	<-cl.done
	return cl.replies, cl.errs
}

// --- typed helpers ---

// Ping checks liveness.
func (c *Client) Ping() error {
	v, err := c.Do("PING")
	if err != nil {
		return err
	}
	if v != "PONG" {
		return fmt.Errorf("client: unexpected ping reply %v", v)
	}
	return nil
}

// Set stores key=val. Concurrent Sets sharing a drain window coalesce
// into one MSET (reply semantics are identical either way).
func (c *Client) Set(key, val string) error {
	_, err := c.doKind(kindSet, []string{"SET", key, val})
	return err
}

// Get fetches key (Nil if absent). Gets always ride the drain window's
// MGET — one key alone or many coalesced — so their semantics are
// MGET's in every window shape: like Redis, a key holding a non-string
// value reads as absent (Nil) rather than a WRONGTYPE error, and never
// differently depending on unrelated concurrent traffic. Use
// Do("GET", key) for strict single-command semantics.
func (c *Client) Get(key string) (string, error) {
	v, err := c.doKind(kindGet, []string{"GET", key})
	if err != nil {
		return "", err
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("client: unexpected GET reply %T", v)
	}
	return s, nil
}

// MGet fetches many keys in one MGET round trip; absent keys are omitted
// from the result.
func (c *Client) MGet(keys ...string) (map[string]string, error) {
	if len(keys) == 0 {
		return map[string]string{}, nil
	}
	args := append([]string{"MGET"}, keys...)
	v, err := c.Do(args...)
	if err != nil {
		return nil, err
	}
	arr, ok := v.([]interface{})
	if !ok || len(arr) != len(keys) {
		return nil, fmt.Errorf("client: unexpected MGET reply %T", v)
	}
	out := make(map[string]string, len(keys))
	for i, e := range arr {
		if s, ok := e.(string); ok {
			out[keys[i]] = s
		}
	}
	return out, nil
}

// MSet stores all pairs in one MSET round trip.
func (c *Client) MSet(pairs map[string]string) error {
	if len(pairs) == 0 {
		return nil
	}
	args := make([]string, 0, 1+2*len(pairs))
	args = append(args, "MSET")
	for k, v := range pairs {
		args = append(args, k, v)
	}
	_, err := c.Do(args...)
	return err
}

// Del removes keys in one DEL round trip, returning how many existed in
// any tier (the server consults the storage tier for keys the cache no
// longer holds).
func (c *Client) Del(keys ...string) (int64, error) {
	return c.del("DEL", keys)
}

// Unlink is DEL's non-blocking alias (Redis UNLINK); TierBase treats the
// two identically.
func (c *Client) Unlink(keys ...string) (int64, error) {
	return c.del("UNLINK", keys)
}

func (c *Client) del(cmd string, keys []string) (int64, error) {
	if len(keys) == 0 {
		return 0, nil
	}
	args := append([]string{cmd}, keys...)
	v, err := c.Do(args...)
	if err != nil {
		return 0, err
	}
	n, ok := v.(int64)
	if !ok {
		return 0, fmt.Errorf("client: unexpected %s reply %T", cmd, v)
	}
	return n, nil
}

// Incr increments a counter.
func (c *Client) Incr(key string) (int64, error) {
	v, err := c.Do("INCR", key)
	if err != nil {
		return 0, err
	}
	return v.(int64), nil
}

// CAS performs compare-and-set; returns whether the swap happened.
func (c *Client) CAS(key, oldVal, newVal string) (bool, error) {
	v, err := c.Do("CAS", key, oldVal, newVal)
	if err != nil {
		return false, err
	}
	return v.(int64) == 1, nil
}
