// Package client is the Go client for TierBase's RESP protocol (the
// client tier of paper §3). It speaks RESP2 over TCP, supports pipelining,
// and offers typed helpers over the raw Do interface. A routed variant
// consults a cluster routing table to reach the right shard process.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"
)

// Nil is returned for absent keys (RESP nil bulk).
var Nil = errors.New("client: nil reply")

// Client is a single-connection RESP client; safe for concurrent use
// (requests serialize on the connection).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a TierBase (or Redis) server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	return &Client{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 16<<10),
		w:    bufio.NewWriterSize(conn, 16<<10),
	}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends one command and reads its reply.
// Reply types: string (simple/bulk), int64, []interface{}, Nil error.
func (c *Client) Do(args ...string) (interface{}, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.writeCommand(args); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	return c.readReply()
}

// Pipeline sends multiple commands in one round trip and returns their
// replies in order.
func (c *Client) Pipeline(cmds [][]string) ([]interface{}, []error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	outs := make([]interface{}, len(cmds))
	errs := make([]error, len(cmds))
	for _, cmd := range cmds {
		if err := c.writeCommand(cmd); err != nil {
			for i := range errs {
				errs[i] = err
			}
			return outs, errs
		}
	}
	if err := c.w.Flush(); err != nil {
		for i := range errs {
			errs[i] = err
		}
		return outs, errs
	}
	for i := range cmds {
		outs[i], errs[i] = c.readReply()
	}
	return outs, errs
}

func (c *Client) writeCommand(args []string) error {
	if _, err := fmt.Fprintf(c.w, "*%d\r\n", len(args)); err != nil {
		return err
	}
	for _, a := range args {
		if _, err := fmt.Fprintf(c.w, "$%d\r\n%s\r\n", len(a), a); err != nil {
			return err
		}
	}
	return nil
}

func (c *Client) readReply() (interface{}, error) {
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	if len(line) < 3 {
		return nil, errors.New("client: malformed reply")
	}
	body := string(line[1 : len(line)-2])
	switch line[0] {
	case '+':
		return body, nil
	case '-':
		return nil, errors.New(body)
	case ':':
		return strconv.ParseInt(body, 10, 64)
	case '$':
		n, err := strconv.Atoi(body)
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, Nil
		}
		buf := make([]byte, n+2)
		if _, err := readFull(c.r, buf); err != nil {
			return nil, err
		}
		return string(buf[:n]), nil
	case '*':
		n, err := strconv.Atoi(body)
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, Nil
		}
		out := make([]interface{}, n)
		for i := 0; i < n; i++ {
			v, err := c.readReply()
			if err != nil && err != Nil {
				return nil, err
			}
			if err == Nil {
				out[i] = nil
			} else {
				out[i] = v
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("client: unknown reply type %q", line[0])
	}
}

func readFull(r *bufio.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// --- typed helpers ---

// Ping checks liveness.
func (c *Client) Ping() error {
	v, err := c.Do("PING")
	if err != nil {
		return err
	}
	if v != "PONG" {
		return fmt.Errorf("client: unexpected ping reply %v", v)
	}
	return nil
}

// Set stores key=val.
func (c *Client) Set(key, val string) error {
	_, err := c.Do("SET", key, val)
	return err
}

// Get fetches key (Nil if absent).
func (c *Client) Get(key string) (string, error) {
	v, err := c.Do("GET", key)
	if err != nil {
		return "", err
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("client: unexpected GET reply %T", v)
	}
	return s, nil
}

// MGet fetches many keys in one MGET round trip; absent keys are omitted
// from the result.
func (c *Client) MGet(keys ...string) (map[string]string, error) {
	if len(keys) == 0 {
		return map[string]string{}, nil
	}
	args := append([]string{"MGET"}, keys...)
	v, err := c.Do(args...)
	if err != nil {
		return nil, err
	}
	arr, ok := v.([]interface{})
	if !ok || len(arr) != len(keys) {
		return nil, fmt.Errorf("client: unexpected MGET reply %T", v)
	}
	out := make(map[string]string, len(keys))
	for i, e := range arr {
		if s, ok := e.(string); ok {
			out[keys[i]] = s
		}
	}
	return out, nil
}

// MSet stores all pairs in one MSET round trip.
func (c *Client) MSet(pairs map[string]string) error {
	if len(pairs) == 0 {
		return nil
	}
	args := make([]string, 0, 1+2*len(pairs))
	args = append(args, "MSET")
	for k, v := range pairs {
		args = append(args, k, v)
	}
	_, err := c.Do(args...)
	return err
}

// Del removes keys in one DEL round trip, returning how many existed in
// any tier (the server consults the storage tier for keys the cache no
// longer holds).
func (c *Client) Del(keys ...string) (int64, error) {
	return c.del("DEL", keys)
}

// Unlink is DEL's non-blocking alias (Redis UNLINK); TierBase treats the
// two identically.
func (c *Client) Unlink(keys ...string) (int64, error) {
	return c.del("UNLINK", keys)
}

func (c *Client) del(cmd string, keys []string) (int64, error) {
	if len(keys) == 0 {
		return 0, nil
	}
	args := append([]string{cmd}, keys...)
	v, err := c.Do(args...)
	if err != nil {
		return 0, err
	}
	n, ok := v.(int64)
	if !ok {
		return 0, fmt.Errorf("client: unexpected %s reply %T", cmd, v)
	}
	return n, nil
}

// Incr increments a counter.
func (c *Client) Incr(key string) (int64, error) {
	v, err := c.Do("INCR", key)
	if err != nil {
		return 0, err
	}
	return v.(int64), nil
}

// CAS performs compare-and-set; returns whether the swap happened.
func (c *Client) CAS(key, oldVal, newVal string) (bool, error) {
	v, err := c.Do("CAS", key, oldVal, newVal)
	if err != nil {
		return false, err
	}
	return v.(int64) == 1, nil
}

// --- routed client ---

// Router resolves a key to a server address (cluster.RoutingTable fits).
type Router interface {
	AddrFor(key string) string
}

// Routed is a cluster-aware client: one connection per node, commands
// routed by key. It mirrors "TierBase clients ... retrieve cluster routing
// information from the coordinator cluster for direct data access".
type Routed struct {
	router Router
	mu     sync.Mutex
	conns  map[string]*Client
}

// NewRouted builds a routed client over a Router.
func NewRouted(router Router) *Routed {
	return &Routed{router: router, conns: make(map[string]*Client)}
}

func (rc *Routed) clientFor(key string) (*Client, error) {
	addr := rc.router.AddrFor(key)
	if addr == "" {
		return nil, errors.New("client: no node for key")
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if c, ok := rc.conns[addr]; ok {
		return c, nil
	}
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	rc.conns[addr] = c
	return c, nil
}

// Set routes a SET by key.
func (rc *Routed) Set(key, val string) error {
	c, err := rc.clientFor(key)
	if err != nil {
		return err
	}
	return c.Set(key, val)
}

// Get routes a GET by key.
func (rc *Routed) Get(key string) (string, error) {
	c, err := rc.clientFor(key)
	if err != nil {
		return "", err
	}
	return c.Get(key)
}

// batchRouter is the optional fast path a Router can provide for grouping
// a whole batch in one call (cluster.RoutingTable implements it).
type batchRouter interface {
	GroupKeysByAddr(keys []string) map[string][]string
}

// groupByAddr buckets keys by owning node address.
func (rc *Routed) groupByAddr(keys []string) map[string][]string {
	if br, ok := rc.router.(batchRouter); ok {
		return br.GroupKeysByAddr(keys)
	}
	groups := make(map[string][]string)
	for _, k := range keys {
		addr := rc.router.AddrFor(k)
		groups[addr] = append(groups[addr], k)
	}
	return groups
}

// MGet fetches many keys across the cluster: keys group by owning node,
// each node receives one MGET, and the node round trips run in parallel.
// Absent keys are omitted from the result.
func (rc *Routed) MGet(keys ...string) (map[string]string, error) {
	groups := rc.groupByAddr(keys)
	// Validate routing before spawning anything: returning mid-iteration
	// would orphan per-node goroutines already in flight.
	if _, hole := groups[""]; hole {
		return nil, errors.New("client: no node for key")
	}
	out := make(map[string]string, len(keys))
	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	for addr, nodeKeys := range groups {
		wg.Add(1)
		go func(addr string, nodeKeys []string) {
			defer wg.Done()
			c, err := rc.clientFor(nodeKeys[0])
			var got map[string]string
			if err == nil {
				got, err = c.MGet(nodeKeys...)
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			for k, v := range got {
				out[k] = v
			}
		}(addr, nodeKeys)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// MSet stores many pairs across the cluster: pairs group by owning node,
// one MSET per node, node round trips in parallel.
func (rc *Routed) MSet(pairs map[string]string) error {
	keys := make([]string, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	groups := rc.groupByAddr(keys)
	if _, hole := groups[""]; hole {
		return errors.New("client: no node for key")
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	for addr, nodeKeys := range groups {
		wg.Add(1)
		go func(addr string, nodeKeys []string) {
			defer wg.Done()
			sub := make(map[string]string, len(nodeKeys))
			for _, k := range nodeKeys {
				sub[k] = pairs[k]
			}
			c, err := rc.clientFor(nodeKeys[0])
			if err == nil {
				err = c.MSet(sub)
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(addr, nodeKeys)
	}
	wg.Wait()
	return firstErr
}

// Del removes keys across the cluster: keys group by owning node, each
// node receives one DEL, node round trips run in parallel, and the
// deleted counts sum.
func (rc *Routed) Del(keys ...string) (int64, error) {
	groups := rc.groupByAddr(keys)
	if _, hole := groups[""]; hole {
		return 0, errors.New("client: no node for key")
	}
	var total int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	for _, nodeKeys := range groups {
		wg.Add(1)
		go func(nodeKeys []string) {
			defer wg.Done()
			c, err := rc.clientFor(nodeKeys[0])
			var n int64
			if err == nil {
				n, err = c.Del(nodeKeys...)
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			total += n
		}(nodeKeys)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	return total, nil
}

// Close closes all node connections.
func (rc *Routed) Close() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	var first error
	for _, c := range rc.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	rc.conns = map[string]*Client{}
	return first
}
