package client

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// stubServer is a minimal in-test RESP server that records every command
// it receives, so tests can assert what actually crossed the wire (e.g.
// that a window of concurrent GETs arrived as one MGET).
type stubServer struct {
	ln net.Listener
	wg sync.WaitGroup

	mu   sync.Mutex
	cmds [][]string
	kv   map[string]string

	// closeAfter, when > 0, makes the server close each connection after
	// serving that many commands on it — a misbehaving-peer injector.
	closeAfter int

	// hook, when set, gets first crack at every command (under s.mu); a
	// non-empty return is written verbatim as the reply. Lets redirect
	// tests inject -MOVED/-ASK responses per key.
	hook func(args []string) string
}

func startStub(t *testing.T) *stubServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &stubServer{ln: ln, kv: make(map[string]string)}
	s.wg.Add(1)
	go s.acceptLoop()
	t.Cleanup(func() {
		ln.Close()
		s.wg.Wait()
	})
	return s
}

func (s *stubServer) addr() string { return s.ln.Addr().String() }

func (s *stubServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *stubServer) serve(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	served := 0
	for {
		args, err := s.readCommand(r)
		if err != nil {
			return
		}
		s.mu.Lock()
		s.cmds = append(s.cmds, args)
		limit := s.closeAfter
		s.mu.Unlock()
		s.reply(w, args)
		served++
		if r.Buffered() == 0 {
			if w.Flush() != nil {
				return
			}
		}
		if limit > 0 && served >= limit {
			w.Flush()
			return
		}
	}
}

func (s *stubServer) readCommand(r *bufio.Reader) ([]string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return nil, err
	}
	line = strings.TrimRight(line, "\r\n")
	if len(line) == 0 || line[0] != '*' {
		return nil, fmt.Errorf("stub: bad command header %q", line)
	}
	n, err := strconv.Atoi(line[1:])
	if err != nil {
		return nil, err
	}
	args := make([]string, 0, n)
	for i := 0; i < n; i++ {
		hdr, err := r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		hdr = strings.TrimRight(hdr, "\r\n")
		if len(hdr) == 0 || hdr[0] != '$' {
			return nil, fmt.Errorf("stub: bad bulk header %q", hdr)
		}
		blen, err := strconv.Atoi(hdr[1:])
		if err != nil {
			return nil, err
		}
		buf := make([]byte, blen+2)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		args = append(args, string(buf[:blen]))
	}
	return args, nil
}

func (s *stubServer) reply(w *bufio.Writer, args []string) {
	cmd := strings.ToUpper(args[0])
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hook != nil {
		if reply := s.hook(args); reply != "" {
			w.WriteString(reply)
			return
		}
	}
	switch cmd {
	case "PING":
		fmt.Fprintf(w, "+PONG\r\n")
	case "SET":
		s.kv[args[1]] = args[2]
		fmt.Fprintf(w, "+OK\r\n")
	case "MSET":
		for i := 1; i+1 < len(args); i += 2 {
			s.kv[args[i]] = args[i+1]
		}
		fmt.Fprintf(w, "+OK\r\n")
	case "GET":
		if v, ok := s.kv[args[1]]; ok {
			fmt.Fprintf(w, "$%d\r\n%s\r\n", len(v), v)
		} else {
			fmt.Fprintf(w, "$-1\r\n")
		}
	case "MGET":
		fmt.Fprintf(w, "*%d\r\n", len(args)-1)
		for _, k := range args[1:] {
			if v, ok := s.kv[k]; ok {
				fmt.Fprintf(w, "$%d\r\n%s\r\n", len(v), v)
			} else {
				fmt.Fprintf(w, "$-1\r\n")
			}
		}
	case "BOOM":
		fmt.Fprintf(w, "-ERR boom\r\n")
	default:
		fmt.Fprintf(w, "-ERR stub: unknown command '%s'\r\n", cmd)
	}
}

// counts returns how many commands of each name the server has seen.
func (s *stubServer) counts() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int)
	for _, c := range s.cmds {
		out[strings.ToUpper(c[0])]++
	}
	return out
}

// lastOf returns the last received command with the given name.
func (s *stubServer) lastOf(name string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.cmds) - 1; i >= 0; i-- {
		if strings.EqualFold(s.cmds[i][0], name) {
			return s.cmds[i]
		}
	}
	return nil
}

func dialStub(t *testing.T, s *stubServer) *Client {
	t.Helper()
	c, err := Dial(s.addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// gateWriter blocks the client's writer before its next drain so a test
// can pile concurrent requests into one deterministic window; the
// returned release function opens the gate.
func gateWriter(c *Client) (release func()) {
	gate := make(chan struct{})
	c.mu.Lock()
	c.testGate = gate
	c.mu.Unlock()
	return func() { close(gate) }
}

func waitPending(t *testing.T, c *Client, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		n := 0
		for _, cl := range c.pending {
			n += len(cl.cmds)
		}
		c.mu.Unlock()
		if n == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pending=%d, want %d", n, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDrainWindowCoalescesGetsIntoOneMGET is the acceptance-criteria
// test: K concurrent single-key Gets sharing one drain window must reach
// the server as exactly one MGET (one round trip), with each caller
// receiving its own key's value.
func TestDrainWindowCoalescesGetsIntoOneMGET(t *testing.T) {
	const K = 16
	srv := startStub(t)
	c := dialStub(t, srv)
	key := func(i int) string { return fmt.Sprintf("k%02d", i) }
	val := func(i int) string { return fmt.Sprintf("v%02d", i) }
	for i := 0; i < K; i++ {
		if err := c.Set(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	before := srv.counts()

	release := gateWriter(c)
	vals := make([]string, K)
	errs := make([]error, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], errs[i] = c.Get(key(i))
		}(i)
	}
	waitPending(t, c, K) // every Get is queued; the writer is gated
	release()
	wg.Wait()

	for i := 0; i < K; i++ {
		if errs[i] != nil {
			t.Fatalf("get %d: %v", i, errs[i])
		}
		if vals[i] != val(i) {
			t.Fatalf("get %d: got %q, want %q (cross-matched reply?)", i, vals[i], val(i))
		}
	}
	after := srv.counts()
	if got := after["MGET"] - before["MGET"]; got != 1 {
		t.Fatalf("window produced %d MGETs on the wire, want exactly 1", got)
	}
	if got := after["GET"] - before["GET"]; got != 0 {
		t.Fatalf("window leaked %d plain GETs, want 0", got)
	}
	if mget := srv.lastOf("MGET"); len(mget)-1 != K {
		t.Fatalf("wire MGET carried %d keys, want %d", len(mget)-1, K)
	}
	st := c.Stats()
	if st.CoalescedGets != K {
		t.Fatalf("CoalescedGets=%d, want %d", st.CoalescedGets, K)
	}
}

// TestDrainWindowCoalescesSetsIntoOneMSET is the write-side twin: K
// concurrent Sets in one window arrive as one MSET and every value
// lands.
func TestDrainWindowCoalescesSetsIntoOneMSET(t *testing.T) {
	const K = 8
	srv := startStub(t)
	c := dialStub(t, srv)
	key := func(i int) string { return fmt.Sprintf("s%02d", i) }
	val := func(i int) string { return fmt.Sprintf("w%02d", i) }

	release := gateWriter(c)
	errs := make([]error, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.Set(key(i), val(i))
		}(i)
	}
	waitPending(t, c, K)
	release()
	wg.Wait()

	for i := 0; i < K; i++ {
		if errs[i] != nil {
			t.Fatalf("set %d: %v", i, errs[i])
		}
	}
	counts := srv.counts()
	if counts["MSET"] != 1 || counts["SET"] != 0 {
		t.Fatalf("wire saw MSET=%d SET=%d, want 1/0", counts["MSET"], counts["SET"])
	}
	for i := 0; i < K; i++ {
		if v, err := c.Get(key(i)); err != nil || v != val(i) {
			t.Fatalf("readback %d: %q %v", i, v, err)
		}
	}
	if st := c.Stats(); st.CoalescedSets != K {
		t.Fatalf("CoalescedSets=%d, want %d", st.CoalescedSets, K)
	}
}

// TestTypedGetAlwaysRidesMGET: a lone typed Get ships as a one-key MGET
// (so Get has MGET semantics deterministically, whatever the window
// holds), while raw Do("GET", ...) ships verbatim and never coalesces.
func TestTypedGetAlwaysRidesMGET(t *testing.T) {
	srv := startStub(t)
	c := dialStub(t, srv)
	if err := c.Set("solo", "x"); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Get("solo"); err != nil || v != "x" {
		t.Fatalf("get: %q %v", v, err)
	}
	counts := srv.counts()
	if counts["GET"] != 0 || counts["MGET"] != 1 {
		t.Fatalf("typed Get wire: GET=%d MGET=%d, want 0/1", counts["GET"], counts["MGET"])
	}
	if mget := srv.lastOf("MGET"); len(mget) != 2 || mget[1] != "solo" {
		t.Fatalf("one-key MGET malformed: %v", mget)
	}
	if st := c.Stats(); st.CoalescedGets != 0 {
		t.Fatalf("a lone Get is not coalescing: CoalescedGets=%d, want 0", st.CoalescedGets)
	}
	if v, err := c.Do("GET", "solo"); err != nil || v != "x" {
		t.Fatalf("raw GET: %v %v", v, err)
	}
	counts = srv.counts()
	if counts["GET"] != 1 || counts["MGET"] != 1 {
		t.Fatalf("raw Do wire: GET=%d MGET=%d, want 1/1", counts["GET"], counts["MGET"])
	}
}

// TestMixedWindow: pipelines and Do calls share the window with
// coalesced gets/sets without replies crossing.
func TestMixedWindow(t *testing.T) {
	srv := startStub(t)
	c := dialStub(t, srv)
	if err := c.Set("p", "q"); err != nil {
		t.Fatal(err)
	}

	release := gateWriter(c)
	var wg sync.WaitGroup
	var getV string
	var getErr error
	var pipeOuts []interface{}
	var pipeErrs []error
	var setErr error
	wg.Add(3)
	go func() { defer wg.Done(); getV, getErr = c.Get("p") }()
	go func() {
		defer wg.Done()
		pipeOuts, pipeErrs = c.Pipeline([][]string{{"PING"}, {"GET", "p"}, {"GET", "absent"}})
	}()
	go func() { defer wg.Done(); setErr = c.Set("w", "z") }()
	waitPending(t, c, 5)
	release()
	wg.Wait()

	if getErr != nil || getV != "q" {
		t.Fatalf("get: %q %v", getV, getErr)
	}
	if setErr != nil {
		t.Fatalf("set: %v", setErr)
	}
	if pipeErrs[0] != nil || pipeOuts[0] != "PONG" {
		t.Fatalf("pipe[0]: %v %v", pipeOuts[0], pipeErrs[0])
	}
	if pipeErrs[1] != nil || pipeOuts[1] != "q" {
		t.Fatalf("pipe[1]: %v %v", pipeOuts[1], pipeErrs[1])
	}
	if pipeErrs[2] != Nil {
		t.Fatalf("pipe[2]: %v %v, want Nil", pipeOuts[2], pipeErrs[2])
	}
	if st := c.Stats(); st.Flushes != 2 { // warm-up SET, then the window
		t.Fatalf("flushes=%d, want 2", st.Flushes)
	}
}

// TestCoalescedGetDemuxesNil: absent keys inside a coalesced MGET come
// back as Nil, exactly like a plain GET.
func TestCoalescedGetDemuxesNil(t *testing.T) {
	srv := startStub(t)
	c := dialStub(t, srv)
	if err := c.Set("have", "v"); err != nil {
		t.Fatal(err)
	}
	release := gateWriter(c)
	var wg sync.WaitGroup
	var haveV, missV string
	var haveErr, missErr error
	wg.Add(2)
	go func() { defer wg.Done(); haveV, haveErr = c.Get("have") }()
	go func() { defer wg.Done(); missV, missErr = c.Get("miss") }()
	waitPending(t, c, 2)
	release()
	wg.Wait()
	if haveErr != nil || haveV != "v" {
		t.Fatalf("have: %q %v", haveV, haveErr)
	}
	if missErr != Nil || missV != "" {
		t.Fatalf("miss: %q %v, want Nil", missV, missErr)
	}
	if counts := srv.counts(); counts["MGET"] != 1 {
		t.Fatalf("MGET count=%d, want 1", counts["MGET"])
	}
}

// TestConnectionErrorIsSticky reproduces the old desync bug's setup: the
// server dies mid-conversation. The mux must fail every in-flight call
// AND every later call with the sticky error — never read a stale reply.
func TestConnectionErrorIsSticky(t *testing.T) {
	srv := startStub(t)
	srv.mu.Lock()
	srv.closeAfter = 1
	srv.mu.Unlock()
	c := dialStub(t, srv)

	if err := c.Ping(); err != nil { // served, then the conn dies
		t.Fatal(err)
	}
	_, err := c.Do("PING")
	if err == nil {
		t.Fatal("command after server hangup should fail")
	}
	sticky := c.Err()
	if sticky == nil {
		t.Fatal("sticky error not installed")
	}
	// Every subsequent call fails fast with the sticky error.
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := c.Do("PING"); !errors.Is(err, sticky) {
			t.Fatalf("call %d: err=%v, want sticky %v", i, err, sticky)
		}
		if d := time.Since(start); d > time.Second {
			t.Fatalf("fail-fast took %v", d)
		}
	}
	if err := c.Set("k", "v"); !errors.Is(err, sticky) {
		t.Fatalf("Set: %v, want sticky", err)
	}
	_, errs := c.Pipeline([][]string{{"PING"}, {"PING"}})
	for i, e := range errs {
		if !errors.Is(e, sticky) {
			t.Fatalf("pipeline[%d]: %v, want sticky", i, e)
		}
	}
}

// TestMidPipelineHangupFailsRemainder: replies delivered before the
// connection died stand; the remainder fail; the client is broken after.
func TestMidPipelineHangupFailsRemainder(t *testing.T) {
	srv := startStub(t)
	srv.mu.Lock()
	srv.closeAfter = 2
	srv.mu.Unlock()
	c := dialStub(t, srv)

	outs, errs := c.Pipeline([][]string{{"PING"}, {"PING"}, {"PING"}, {"PING"}})
	if errs[0] != nil || outs[0] != "PONG" {
		t.Fatalf("reply 0: %v %v", outs[0], errs[0])
	}
	if errs[1] != nil || outs[1] != "PONG" {
		t.Fatalf("reply 1: %v %v", outs[1], errs[1])
	}
	if errs[2] == nil || errs[3] == nil {
		t.Fatalf("replies past the hangup must fail: %v %v", errs[2], errs[3])
	}
	if c.Err() == nil {
		t.Fatal("client must be sticky-broken after a mid-pipeline hangup")
	}
	if _, err := c.Do("GET", "k"); err == nil {
		t.Fatal("post-hangup call must fail (old code would desync here)")
	}
}

// TestServerErrorReplyIsNotSticky: an in-protocol -ERR reply fails only
// its own call; the connection stays healthy.
func TestServerErrorReplyIsNotSticky(t *testing.T) {
	srv := startStub(t)
	c := dialStub(t, srv)
	if _, err := c.Do("BOOM"); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("BOOM: %v", err)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("server error reply must not break the client: %v", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after -ERR: %v", err)
	}
}

// TestCloseFailsInflight: Close while calls are gated in the pending
// queue releases every waiter with ErrClosed instead of hanging.
func TestCloseFailsInflight(t *testing.T) {
	srv := startStub(t)
	c, err := Dial(srv.addr())
	if err != nil {
		t.Fatal(err)
	}
	release := gateWriter(c)
	const K = 8
	errs := make([]error, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Do("PING")
		}(i)
	}
	waitPending(t, c, K)
	c.Close()
	release() // writer wakes, sees the sticky error, exits
	wg.Wait()
	for i, e := range errs {
		if !errors.Is(e, ErrClosed) {
			t.Fatalf("call %d: %v, want ErrClosed", i, e)
		}
	}
}
