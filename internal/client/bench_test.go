package client_test

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tierbase/internal/client"
	"tierbase/internal/server"
)

// --- serialized baseline -------------------------------------------------
//
// serializedClient replicates the pre-mux client verbatim: one mutex, one
// connection, write+flush+read held across the round trip. It is kept as
// a permanent in-repo baseline so the mux benchmarks compare against the
// old access path on every run instead of requiring a git-stash dance.

type serializedClient struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

func dialSerialized(addr string) (*serializedClient, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &serializedClient{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 16<<10),
		w:    bufio.NewWriterSize(conn, 16<<10),
	}, nil
}

func (c *serializedClient) close() error { return c.conn.Close() }

func (c *serializedClient) do(args ...string) (interface{}, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := fmt.Fprintf(c.w, "*%d\r\n", len(args)); err != nil {
		return nil, err
	}
	for _, a := range args {
		if _, err := fmt.Fprintf(c.w, "$%d\r\n%s\r\n", len(a), a); err != nil {
			return nil, err
		}
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	return c.readReply()
}

var errSerializedNil = errors.New("serialized: nil reply")

func (c *serializedClient) readReply() (interface{}, error) {
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	if len(line) < 3 {
		return nil, errors.New("serialized: malformed reply")
	}
	body := string(line[1 : len(line)-2])
	switch line[0] {
	case '+':
		return body, nil
	case '-':
		return nil, errors.New(body)
	case ':':
		return strconv.ParseInt(body, 10, 64)
	case '$':
		n, err := strconv.Atoi(body)
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, errSerializedNil
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(c.r, buf); err != nil {
			return nil, err
		}
		return string(buf[:n]), nil
	case '*':
		n, err := strconv.Atoi(body)
		if err != nil {
			return nil, err
		}
		out := make([]interface{}, 0, n)
		for i := 0; i < n; i++ {
			v, err := c.readReply()
			if err != nil && err != errSerializedNil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("serialized: unknown reply type %q", line[0])
	}
}

func (c *serializedClient) get(key string) (string, error) {
	v, err := c.do("GET", key)
	if err != nil {
		return "", err
	}
	s, _ := v.(string)
	return s, nil
}

// --- injected-RTT proxy --------------------------------------------------

// rttProxy relays bytes between client and server, sleeping delay before
// forwarding each read chunk (so a full round trip costs ~2*delay). The
// delay is per CHUNK, not per command: a pipelined burst of N commands
// crosses in one chunk and pays the RTT once, while a serialized caller
// pays it per command — exactly the network effect the mux amortizes.
// Unlike cache.Remote's spin-wait RTT, this sleeps for real, so it does
// not burn the 1-core box's CPU (the spin-RTT caveat).
func startRTTProxy(tb testing.TB, backend string, delay time.Duration) string {
	tb.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	var conns sync.Map
	go func() {
		for {
			cl, err := ln.Accept()
			if err != nil {
				return
			}
			srv, err := net.DialTimeout("tcp", backend, 5*time.Second)
			if err != nil {
				cl.Close()
				continue
			}
			conns.Store(cl, struct{}{})
			conns.Store(srv, struct{}{})
			relay := func(dst, src net.Conn) {
				defer dst.Close()
				buf := make([]byte, 64<<10)
				for {
					n, err := src.Read(buf)
					if n > 0 {
						time.Sleep(delay)
						if _, werr := dst.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}
			go relay(srv, cl)
			go relay(cl, srv)
		}
	}()
	tb.Cleanup(func() {
		ln.Close()
		conns.Range(func(k, _ interface{}) bool {
			k.(net.Conn).Close()
			return true
		})
	})
	return ln.Addr().String()
}

// --- harness -------------------------------------------------------------

const benchKeys = 512

func benchKey(i int) string { return fmt.Sprintf("bench%04d", i%benchKeys) }

func startBenchServer(b *testing.B) *server.Server {
	b.Helper()
	s, err := server.Start(server.Options{Addr: "127.0.0.1:0", Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	c, err := client.Dial(s.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	pairs := make(map[string]string, benchKeys)
	for i := 0; i < benchKeys; i++ {
		pairs[benchKey(i)] = fmt.Sprintf("value-%04d", i)
	}
	if err := c.MSet(pairs); err != nil {
		b.Fatal(err)
	}
	return s
}

// runConcurrent spreads b.N ops over the given number of goroutines via a
// shared atomic cursor (deterministic goroutine count, unlike
// RunParallel's GOMAXPROCS scaling).
func runConcurrent(b *testing.B, goroutines int, op func(i int) error) {
	var cursor atomic.Int64
	var wg sync.WaitGroup
	var firstErr atomic.Value
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= b.N {
					return
				}
				if err := op(i); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		b.Fatal(err)
	}
}

// --- benchmarks ----------------------------------------------------------

// The headline pair: 64 goroutines sharing ONE connection at an injected
// ~1ms RTT. The serialized client pays one RTT per op; the mux shares
// each RTT across the whole drain window.

func BenchmarkMuxGet64GoroutinesRTT1ms(b *testing.B) {
	s := startBenchServer(b)
	proxyAddr := startRTTProxy(b, s.Addr(), 500*time.Microsecond)
	c, err := client.Dial(proxyAddr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	runConcurrent(b, 64, func(i int) error {
		v, err := c.Get(benchKey(i))
		if err != nil {
			return err
		}
		if v == "" {
			return errors.New("empty value")
		}
		return nil
	})
	b.StopTimer()
	st := c.Stats()
	if st.Flushes > 0 {
		b.ReportMetric(float64(st.Requests)/float64(st.Flushes), "reqs/flush")
	}
}

func BenchmarkSerializedGet64GoroutinesRTT1ms(b *testing.B) {
	s := startBenchServer(b)
	proxyAddr := startRTTProxy(b, s.Addr(), 500*time.Microsecond)
	c, err := dialSerialized(proxyAddr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.close()
	b.ResetTimer()
	runConcurrent(b, 64, func(i int) error {
		v, err := c.get(benchKey(i))
		if err != nil {
			return err
		}
		if v == "" {
			return errors.New("empty value")
		}
		return nil
	})
}

// The parity pair: a single sequential caller, no injected RTT — the mux
// adds two goroutine handoffs per op and must stay close to the
// serialized fast path.

func BenchmarkMuxGetSequential(b *testing.B) {
	s := startBenchServer(b)
	c, err := client.Dial(s.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Get(benchKey(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerializedGetSequential(b *testing.B) {
	s := startBenchServer(b)
	c, err := dialSerialized(s.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.get(benchKey(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// The same parity pair at the injected RTT: with a real network in the
// way both clients pay one RTT per sequential op and the mux's scheduling
// overhead vanishes into it.

func BenchmarkMuxGetSequentialRTT1ms(b *testing.B) {
	s := startBenchServer(b)
	proxyAddr := startRTTProxy(b, s.Addr(), 500*time.Microsecond)
	c, err := client.Dial(proxyAddr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Get(benchKey(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerializedGetSequentialRTT1ms(b *testing.B) {
	s := startBenchServer(b)
	proxyAddr := startRTTProxy(b, s.Addr(), 500*time.Microsecond)
	c, err := dialSerialized(proxyAddr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.get(benchKey(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// Coalescing shape at zero RTT: how many wire commands and flushes b.N
// concurrent gets collapse into (window size is emergent: whatever piles
// up while the previous flush is on the wire).

func BenchmarkMuxGet64GoroutinesCoalesce(b *testing.B) {
	s := startBenchServer(b)
	c, err := client.Dial(s.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	runConcurrent(b, 64, func(i int) error {
		_, err := c.Get(benchKey(i))
		return err
	})
	b.StopTimer()
	st := c.Stats()
	if b.N > 0 {
		b.ReportMetric(float64(st.WireCommands)/float64(b.N), "wirecmds/op")
		b.ReportMetric(float64(st.Flushes)/float64(b.N), "flushes/op")
		b.ReportMetric(float64(st.CoalescedGets)/float64(b.N), "coalesced/op")
	}
}

// Write-side coalescing: 64 concurrent setters collapsing into MSETs.
func BenchmarkMuxSet64GoroutinesCoalesce(b *testing.B) {
	s := startBenchServer(b)
	c, err := client.Dial(s.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	runConcurrent(b, 64, func(i int) error {
		return c.Set(benchKey(i), "value-rewrite")
	})
	b.StopTimer()
	st := c.Stats()
	if b.N > 0 {
		b.ReportMetric(float64(st.WireCommands)/float64(b.N), "wirecmds/op")
		b.ReportMetric(float64(st.CoalescedSets)/float64(b.N), "coalesced/op")
	}
}
