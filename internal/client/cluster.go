package client

import (
	"encoding/json"
	"fmt"
	"sync/atomic"

	"tierbase/internal/cluster"
)

// tableRouter is a Router backed by an atomically swapped routing table
// fetched from the coordinator (CLUSTER TABLE). Lookups are lock-free;
// a refresh publishes a whole new table in one pointer swap.
type tableRouter struct {
	table atomic.Pointer[cluster.RoutingTable]
}

func (tr *tableRouter) AddrFor(key string) string {
	return tr.table.Load().AddrFor(key)
}

func (tr *tableRouter) GroupKeysByAddr(keys []string) map[string][]string {
	return tr.table.Load().GroupKeysByAddr(keys)
}

func (tr *tableRouter) GroupPairsByAddr(pairs map[string]string) map[string]map[string]string {
	return tr.table.Load().GroupPairsByAddr(pairs)
}

// NewCluster builds a Routed client that discovers the cluster through a
// coordinator: it fetches the routing table (CLUSTER TABLE) at startup
// and refetches it whenever a node answers MOVED or becomes unreachable,
// so traffic follows a failover without restarting the client. The
// coordinator is dialed per refresh (refreshes are rare and this
// survives coordinator restarts).
func NewCluster(coordAddr string) (*Routed, error) {
	tr := &tableRouter{}
	rc := NewRouted(tr)
	rc.refreshFn = func() error {
		rt, err := fetchTable(coordAddr)
		if err != nil {
			return err
		}
		// Never regress: a stale fetch racing a newer one must not
		// un-publish a later epoch.
		if cur := tr.table.Load(); cur != nil && cur.Epoch > rt.Epoch {
			return nil
		}
		tr.table.Store(rt)
		return nil
	}
	if err := rc.Refresh(); err != nil {
		return nil, fmt.Errorf("client: initial routing fetch: %w", err)
	}
	return rc, nil
}

// fetchTable dials the coordinator and unmarshals CLUSTER TABLE.
func fetchTable(coordAddr string) (*cluster.RoutingTable, error) {
	c, err := Dial(coordAddr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	v, err := c.Do("CLUSTER", "TABLE")
	if err != nil {
		return nil, err
	}
	blob, ok := v.(string)
	if !ok {
		return nil, fmt.Errorf("client: unexpected CLUSTER TABLE reply %T", v)
	}
	rt := new(cluster.RoutingTable)
	if err := json.Unmarshal([]byte(blob), rt); err != nil {
		return nil, fmt.Errorf("client: bad routing table: %w", err)
	}
	return rt, nil
}
