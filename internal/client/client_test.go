package client_test

import (
	"fmt"
	"testing"

	"tierbase/internal/client"
	"tierbase/internal/cluster"
	"tierbase/internal/server"
)

func TestDialFailure(t *testing.T) {
	if _, err := client.Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port should fail")
	}
}

func TestRoutedClientAcrossNodes(t *testing.T) {
	// Two server processes, slots split between them by the coordinator.
	s1, err := server.Start(server.Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := server.Start(server.Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	coord := cluster.NewCoordinator()
	coord.Register(cluster.Node{ID: "n1", Addr: s1.Addr(), Role: cluster.RoleMaster})
	coord.Register(cluster.Node{ID: "n2", Addr: s2.Addr(), Role: cluster.RoleMaster})
	table := coord.Table()

	rc := client.NewRouted(&table)
	defer rc.Close()
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("routed%03d", i)
		if err := rc.Set(k, "v"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("routed%03d", i)
		if v, err := rc.Get(k); err != nil || v != "v" {
			t.Fatalf("get %s: %q %v", k, v, err)
		}
	}
	// Both nodes must hold a share of the keys.
	n1 := keysOn(s1)
	n2 := keysOn(s2)
	if n1 == 0 || n2 == 0 {
		t.Fatalf("routing not spread: n1=%d n2=%d", n1, n2)
	}
	if n1+n2 != 100 {
		t.Fatalf("key loss: %d+%d", n1, n2)
	}
}

func keysOn(s *server.Server) int {
	total := 0
	for _, e := range s.Shards() {
		total += e.Len()
	}
	return total
}

func TestRoutedNoNode(t *testing.T) {
	rc := client.NewRouted(emptyRouter{})
	defer rc.Close()
	if err := rc.Set("k", "v"); err == nil {
		t.Fatal("routing with no nodes should fail")
	}
	if _, err := rc.Get("k"); err == nil {
		t.Fatal("routing with no nodes should fail")
	}
}

type emptyRouter struct{}

func (emptyRouter) AddrFor(string) string { return "" }

func TestClientMGetMSet(t *testing.T) {
	s, err := server.Start(server.Options{Addr: "127.0.0.1:0", Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := client.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.MSet(map[string]string{"a": "1", "b": "2", "c": "3"}); err != nil {
		t.Fatal(err)
	}
	got, err := c.MGet("a", "b", "missing", "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got["a"] != "1" || got["b"] != "2" || got["c"] != "3" {
		t.Fatalf("mget: %v", got)
	}
	if out, err := c.MGet(); err != nil || len(out) != 0 {
		t.Fatalf("empty mget: %v %v", out, err)
	}
	if err := c.MSet(nil); err != nil {
		t.Fatalf("empty mset: %v", err)
	}
}

func TestRoutedMGetMSetAcrossNodes(t *testing.T) {
	s1, err := server.Start(server.Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := server.Start(server.Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	coord := cluster.NewCoordinator()
	coord.Register(cluster.Node{ID: "n1", Addr: s1.Addr(), Role: cluster.RoleMaster})
	coord.Register(cluster.Node{ID: "n2", Addr: s2.Addr(), Role: cluster.RoleMaster})
	table := coord.Table()

	rc := client.NewRouted(&table)
	defer rc.Close()

	pairs := map[string]string{}
	keys := []string{}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("batch%03d", i)
		pairs[k] = fmt.Sprintf("v%03d", i)
		keys = append(keys, k)
	}
	if err := rc.MSet(pairs); err != nil {
		t.Fatal(err)
	}
	got, err := rc.MGet(append(keys, "absent")...)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pairs) {
		t.Fatalf("mget returned %d/%d keys", len(got), len(pairs))
	}
	for k, want := range pairs {
		if got[k] != want {
			t.Fatalf("mget[%s] = %q, want %q", k, got[k], want)
		}
	}
	// Both nodes must have served a share: check each node holds keys.
	n1 := s1.Shards()[0].Stats()
	n2 := s2.Shards()[0].Stats()
	if n1.Keys == 0 || n2.Keys == 0 {
		t.Fatalf("batch did not spread: n1=%d n2=%d keys", n1.Keys, n2.Keys)
	}
}

func TestRoutedDelAcrossNodes(t *testing.T) {
	s1, err := server.Start(server.Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := server.Start(server.Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	coord := cluster.NewCoordinator()
	coord.Register(cluster.Node{ID: "n1", Addr: s1.Addr(), Role: cluster.RoleMaster})
	coord.Register(cluster.Node{ID: "n2", Addr: s2.Addr(), Role: cluster.RoleMaster})
	table := coord.Table()

	rc := client.NewRouted(&table)
	defer rc.Close()

	pairs := map[string]string{}
	keys := []string{}
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("delkey%03d", i)
		pairs[k] = "v"
		keys = append(keys, k)
	}
	if err := rc.MSet(pairs); err != nil {
		t.Fatal(err)
	}
	// One DEL per node, counts summed across the cluster.
	n, err := rc.Del(append(keys, "absent")...)
	if err != nil || n != 64 {
		t.Fatalf("routed del: %d %v, want 64", n, err)
	}
	if keysOn(s1)+keysOn(s2) != 0 {
		t.Fatalf("keys survived: n1=%d n2=%d", keysOn(s1), keysOn(s2))
	}
	if _, err := rc.Del("unroutable"); err != nil {
		t.Fatalf("del of absent key: %v", err)
	}
}
