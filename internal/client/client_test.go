package client_test

import (
	"fmt"
	"testing"

	"tierbase/internal/client"
	"tierbase/internal/cluster"
	"tierbase/internal/server"
)

func TestDialFailure(t *testing.T) {
	if _, err := client.Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port should fail")
	}
}

func TestRoutedClientAcrossNodes(t *testing.T) {
	// Two server processes, slots split between them by the coordinator.
	s1, err := server.Start(server.Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := server.Start(server.Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	coord := cluster.NewCoordinator()
	coord.Register(cluster.Node{ID: "n1", Addr: s1.Addr(), Role: cluster.RoleMaster})
	coord.Register(cluster.Node{ID: "n2", Addr: s2.Addr(), Role: cluster.RoleMaster})
	table := coord.Table()

	rc := client.NewRouted(&table)
	defer rc.Close()
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("routed%03d", i)
		if err := rc.Set(k, "v"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("routed%03d", i)
		if v, err := rc.Get(k); err != nil || v != "v" {
			t.Fatalf("get %s: %q %v", k, v, err)
		}
	}
	// Both nodes must hold a share of the keys.
	n1 := keysOn(s1)
	n2 := keysOn(s2)
	if n1 == 0 || n2 == 0 {
		t.Fatalf("routing not spread: n1=%d n2=%d", n1, n2)
	}
	if n1+n2 != 100 {
		t.Fatalf("key loss: %d+%d", n1, n2)
	}
}

func keysOn(s *server.Server) int {
	total := 0
	for _, e := range s.Shards() {
		total += e.Len()
	}
	return total
}

func TestRoutedNoNode(t *testing.T) {
	rc := client.NewRouted(emptyRouter{})
	defer rc.Close()
	if err := rc.Set("k", "v"); err == nil {
		t.Fatal("routing with no nodes should fail")
	}
	if _, err := rc.Get("k"); err == nil {
		t.Fatal("routing with no nodes should fail")
	}
}

type emptyRouter struct{}

func (emptyRouter) AddrFor(string) string { return "" }
