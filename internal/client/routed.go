package client

import (
	"errors"
	"sync"
	"time"
)

// Router resolves a key to a server address (cluster.RoutingTable fits).
type Router interface {
	AddrFor(key string) string
}

// maxRedirects bounds how many times one logical operation follows
// MOVED/ASK redirects or retries through a topology refresh before
// surfacing the last error.
const maxRedirects = 4

// refreshMinInterval rate-limits routing-table refetches: a thundering
// herd of redirected callers collapses into one refresh per interval.
const refreshMinInterval = 50 * time.Millisecond

// Routed is a cluster-aware client: one multiplexed connection per node,
// commands routed by key. It mirrors "TierBase clients ... retrieve
// cluster routing information from the coordinator cluster for direct
// data access". Every caller routing to the same node shares that node's
// mux, so concurrent single-key traffic coalesces per node exactly as it
// does on a plain Client. Dials happen outside the routing lock with
// per-address singleflight: while one node is unreachable, only callers
// of that node wait on the dial — routing to healthy nodes never blocks.
//
// Redirect handling is typed (errors.As, no reply-text sniffing): a
// *MovedError triggers a routing refresh (when the Router supports it)
// and a follow to the named address; an *AskError follows once without
// refreshing; a *ConnError (node died mid-traffic) refreshes and
// re-routes. Plain server errors (WRONGTYPE, ...) surface immediately.
type Routed struct {
	router Router
	mu     sync.Mutex
	conns  map[string]*Client
	dials  map[string]*dialFlight
	closed bool

	// refreshFn refetches routing state (set by NewCluster; nil for a
	// static Router). refreshMu serializes refreshes; lastRefresh
	// rate-limits them.
	refreshFn   func() error
	refreshMu   sync.Mutex
	lastRefresh time.Time
}

// dialFlight is the per-address singleflight state: the first caller
// needing an address dials with rc.mu released; later callers of the
// same address wait on done and share the outcome.
type dialFlight struct {
	done chan struct{}
	c    *Client
	err  error
}

// NewRouted builds a routed client over a Router.
func NewRouted(router Router) *Routed {
	return &Routed{
		router: router,
		conns:  make(map[string]*Client),
		dials:  make(map[string]*dialFlight),
	}
}

func (rc *Routed) clientFor(key string) (*Client, error) {
	addr := rc.router.AddrFor(key)
	if addr == "" {
		return nil, errors.New("client: no node for key")
	}
	return rc.clientForAddr(addr)
}

// clientForAddr returns the live mux for addr, dialing if needed. A
// cached client whose connection went sticky-broken is dropped and
// redialed, so one failed node round trip doesn't poison the address
// forever. Dial errors are not cached: each new round of callers retries.
func (rc *Routed) clientForAddr(addr string) (*Client, error) {
	rc.mu.Lock()
	if rc.closed {
		rc.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := rc.conns[addr]; ok {
		if c.Err() == nil {
			rc.mu.Unlock()
			return c, nil
		}
		delete(rc.conns, addr) // broken: fall through to redial
	}
	if d, ok := rc.dials[addr]; ok {
		rc.mu.Unlock()
		<-d.done
		return d.c, d.err
	}
	d := &dialFlight{done: make(chan struct{})}
	rc.dials[addr] = d
	rc.mu.Unlock()

	c, err := Dial(addr)
	rc.mu.Lock()
	delete(rc.dials, addr)
	closedUnderUs := rc.closed
	if err == nil && !closedUnderUs {
		rc.conns[addr] = c
	}
	rc.mu.Unlock()
	if err == nil && closedUnderUs {
		c.Close()
		c, err = nil, ErrClosed
	}
	d.c, d.err = c, err
	close(d.done)
	return c, err
}

// Refresh refetches the routing table immediately (no rate limit).
// No-op for a static Router.
func (rc *Routed) Refresh() error {
	if rc.refreshFn == nil {
		return nil
	}
	rc.refreshMu.Lock()
	defer rc.refreshMu.Unlock()
	err := rc.refreshFn()
	if err == nil {
		rc.lastRefresh = time.Now()
	}
	return err
}

// maybeRefresh refetches the routing table unless one landed within
// refreshMinInterval (redirect storms collapse into one fetch).
func (rc *Routed) maybeRefresh() {
	if rc.refreshFn == nil {
		return
	}
	rc.refreshMu.Lock()
	defer rc.refreshMu.Unlock()
	if time.Since(rc.lastRefresh) < refreshMinInterval {
		return
	}
	if err := rc.refreshFn(); err == nil {
		rc.lastRefresh = time.Now()
	}
}

// doRouted runs one single-key operation with redirect handling:
// MOVED → refresh + follow, ASK → follow once, ConnError/dial failure →
// refresh + re-route, server errors → surface.
func (rc *Routed) doRouted(key string, fn func(c *Client) error) error {
	addrOverride := ""
	var lastErr error
	for attempt := 0; attempt <= maxRedirects; attempt++ {
		if attempt > 0 && addrOverride == "" {
			// Re-routing after a transient failure: give a promotion in
			// progress a beat before hammering the same (stale) address.
			time.Sleep(time.Duration(attempt) * 20 * time.Millisecond)
		}
		var c *Client
		var err error
		if addrOverride != "" {
			addr := addrOverride
			addrOverride = ""
			c, err = rc.clientForAddr(addr)
		} else {
			c, err = rc.clientFor(key)
		}
		if err == nil {
			err = fn(c)
		}
		if err == nil || err == Nil {
			return err
		}
		var mv *MovedError
		var ask *AskError
		switch {
		case errors.As(err, &mv):
			rc.maybeRefresh()
			addrOverride = mv.Addr
		case errors.As(err, &ask):
			addrOverride = ask.Addr
		case isOverloaded(err):
			// Watermark shedding is node-local and self-healing (the
			// server resumes writes once memory drains below its low
			// watermark): back off harder than a redirect and retry the
			// same route — no topology refresh, the table is not stale.
			time.Sleep(overloadBackoff(attempt))
		case isTransient(err):
			rc.maybeRefresh()
		default:
			return err
		}
		lastErr = err
	}
	return lastErr
}

// overloadBackoff is the wait before retrying a write the server shed at
// its memory watermark (or a connection refused at the admission cap):
// linear growth from 50ms, long enough for at least one server-side
// watermark sample between attempts.
func overloadBackoff(attempt int) time.Duration {
	return time.Duration(attempt+1) * 50 * time.Millisecond
}

// isOverloaded reports whether err is a server-side overload rejection —
// retryable against the same node after a backoff, with no topology
// refresh.
func isOverloaded(err error) bool {
	var ov *OverloadedError
	var mc *MaxConnError
	return errors.As(err, &ov) || errors.As(err, &mc)
}

// retryTopology runs a whole-batch operation, retrying through routing
// refreshes on redirects and transport failures. Batches re-split by the
// (refreshed) table instead of following a single redirect address.
func (rc *Routed) retryTopology(op func() error) error {
	var lastErr error
	for attempt := 0; attempt <= maxRedirects; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * 20 * time.Millisecond)
		}
		err := op()
		if err == nil || err == Nil {
			return err
		}
		var mv *MovedError
		var ask *AskError
		switch {
		case isOverloaded(err):
			time.Sleep(overloadBackoff(attempt)) // same node retries; see doRouted
		case errors.As(err, &mv), errors.As(err, &ask), isTransient(err):
			rc.maybeRefresh()
		default:
			return err
		}
		lastErr = err
	}
	return lastErr
}

// Set routes a SET by key, following redirects.
func (rc *Routed) Set(key, val string) error {
	return rc.doRouted(key, func(c *Client) error {
		return c.Set(key, val)
	})
}

// Get routes a GET by key, following redirects.
func (rc *Routed) Get(key string) (string, error) {
	var out string
	err := rc.doRouted(key, func(c *Client) error {
		v, err := c.Get(key)
		out = v
		return err
	})
	return out, err
}

// batchRouter is the optional fast path a Router can provide for grouping
// a whole batch in one call (cluster.RoutingTable implements it).
type batchRouter interface {
	GroupKeysByAddr(keys []string) map[string][]string
}

// pairRouter is the write-side twin: grouping key/value pairs by node in
// one call (cluster.RoutingTable implements it).
type pairRouter interface {
	GroupPairsByAddr(pairs map[string]string) map[string]map[string]string
}

// groupByAddr buckets keys by owning node address.
func (rc *Routed) groupByAddr(keys []string) map[string][]string {
	if br, ok := rc.router.(batchRouter); ok {
		return br.GroupKeysByAddr(keys)
	}
	groups := make(map[string][]string)
	for _, k := range keys {
		addr := rc.router.AddrFor(k)
		groups[addr] = append(groups[addr], k)
	}
	return groups
}

// MGet fetches many keys across the cluster: keys group by owning node,
// each node receives one MGET, and the node round trips run in parallel.
// Absent keys are omitted from the result. Redirects and node failures
// re-split the batch against a refreshed table.
func (rc *Routed) MGet(keys ...string) (map[string]string, error) {
	var out map[string]string
	err := rc.retryTopology(func() error {
		var err error
		out, err = rc.mgetOnce(keys)
		return err
	})
	return out, err
}

func (rc *Routed) mgetOnce(keys []string) (map[string]string, error) {
	groups := rc.groupByAddr(keys)
	// Validate routing before spawning anything: returning mid-iteration
	// would orphan per-node goroutines already in flight.
	if _, hole := groups[""]; hole {
		return nil, errors.New("client: no node for key")
	}
	out := make(map[string]string, len(keys))
	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	for addr, nodeKeys := range groups {
		wg.Add(1)
		go func(addr string, nodeKeys []string) {
			defer wg.Done()
			c, err := rc.clientForAddr(addr)
			var got map[string]string
			if err == nil {
				got, err = c.MGet(nodeKeys...)
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			for k, v := range got {
				out[k] = v
			}
		}(addr, nodeKeys)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// MSet stores many pairs across the cluster: pairs group by owning node,
// one MSET per node, node round trips in parallel. Redirects and node
// failures re-split the batch against a refreshed table.
func (rc *Routed) MSet(pairs map[string]string) error {
	return rc.retryTopology(func() error {
		return rc.msetOnce(pairs)
	})
}

func (rc *Routed) msetOnce(pairs map[string]string) error {
	var groups map[string]map[string]string
	if pr, ok := rc.router.(pairRouter); ok {
		groups = pr.GroupPairsByAddr(pairs)
	} else {
		keys := make([]string, 0, len(pairs))
		for k := range pairs {
			keys = append(keys, k)
		}
		groups = make(map[string]map[string]string)
		for addr, nodeKeys := range rc.groupByAddr(keys) {
			sub := make(map[string]string, len(nodeKeys))
			for _, k := range nodeKeys {
				sub[k] = pairs[k]
			}
			groups[addr] = sub
		}
	}
	if _, hole := groups[""]; hole {
		return errors.New("client: no node for key")
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	for addr, sub := range groups {
		wg.Add(1)
		go func(addr string, sub map[string]string) {
			defer wg.Done()
			c, err := rc.clientForAddr(addr)
			if err == nil {
				err = c.MSet(sub)
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(addr, sub)
	}
	wg.Wait()
	return firstErr
}

// Del removes keys across the cluster: keys group by owning node, each
// node receives one DEL, node round trips run in parallel, and the
// deleted counts sum. Redirects and node failures re-split the batch
// against a refreshed table.
func (rc *Routed) Del(keys ...string) (int64, error) {
	var total int64
	err := rc.retryTopology(func() error {
		var err error
		total, err = rc.delOnce(keys)
		return err
	})
	return total, err
}

func (rc *Routed) delOnce(keys []string) (int64, error) {
	groups := rc.groupByAddr(keys)
	if _, hole := groups[""]; hole {
		return 0, errors.New("client: no node for key")
	}
	var total int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	for addr, nodeKeys := range groups {
		wg.Add(1)
		go func(addr string, nodeKeys []string) {
			defer wg.Done()
			c, err := rc.clientForAddr(addr)
			var n int64
			if err == nil {
				n, err = c.Del(nodeKeys...)
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			total += n
		}(addr, nodeKeys)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	return total, nil
}

// Close closes all node connections. Dials still in flight complete and
// are closed on arrival; callers waiting on them get ErrClosed.
func (rc *Routed) Close() error {
	rc.mu.Lock()
	rc.closed = true
	conns := rc.conns
	rc.conns = map[string]*Client{}
	rc.mu.Unlock()
	var first error
	for _, c := range conns {
		if err := c.Close(); err != nil && err != ErrClosed && first == nil {
			first = err
		}
	}
	return first
}
